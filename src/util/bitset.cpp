#include "util/bitset.hpp"

#include <algorithm>
#include <bit>

#include "util/simd.hpp"

#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)
#include <immintrin.h>
#endif

namespace bfhrf::util {
namespace {

#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)

// AVX2 kernels carry per-function target attributes because the baseline
// build targets plain x86-64; they are only reached when the runtime
// dispatch (avx2_wide below) has confirmed cpu support.

/// Spans narrower than this stay scalar: a 256-bit lane holds 4 words, and
/// below ~2 lanes the dispatch + horizontal-sum overhead beats the win.
constexpr std::size_t kAvx2MinWords = 8;

[[nodiscard]] bool avx2_wide(std::size_t words) noexcept {
  return words >= kAvx2MinWords &&
         simd::active_level() == simd::Level::Avx2;
}

/// Per-64-bit-lane popcount (Mula's nibble-LUT + psadbw).
[[gnu::target("avx2")]] inline __m256i popcount256(__m256i v) noexcept {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i nib = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, nib);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), nib);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

[[gnu::target("avx2")]] inline std::size_t hsum64(__m256i acc) noexcept {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i sum = _mm_add_epi64(lo, hi);
  return static_cast<std::size_t>(_mm_cvtsi128_si64(sum)) +
         static_cast<std::size_t>(
             _mm_cvtsi128_si64(_mm_unpackhi_epi64(sum, sum)));
}

enum class PairOp { And, Or, Xor, AndNot };

template <PairOp Op>
[[gnu::target("avx2")]] std::size_t popcount_pair_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i v;
    if constexpr (Op == PairOp::And) {
      v = _mm256_and_si256(va, vb);
    } else if constexpr (Op == PairOp::Or) {
      v = _mm256_or_si256(va, vb);
    } else if constexpr (Op == PairOp::Xor) {
      v = _mm256_xor_si256(va, vb);
    } else {
      v = _mm256_andnot_si256(vb, va);  // ~vb & va
    }
    acc = _mm256_add_epi64(acc, popcount256(v));
  }
  std::size_t total = hsum64(acc);
  for (; i < n; ++i) {
    std::uint64_t w;
    if constexpr (Op == PairOp::And) {
      w = a[i] & b[i];
    } else if constexpr (Op == PairOp::Or) {
      w = a[i] | b[i];
    } else if constexpr (Op == PairOp::Xor) {
      w = a[i] ^ b[i];
    } else {
      w = a[i] & ~b[i];
    }
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

[[gnu::target("avx2")]] std::size_t popcount_words_avx2(
    const std::uint64_t* a, std::size_t n) noexcept {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, popcount256(_mm256_loadu_si256(
                 reinterpret_cast<const __m256i*>(a + i))));
  }
  std::size_t total = hsum64(acc);
  for (; i < n; ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i]));
  }
  return total;
}

#endif  // BFHRF_SIMD_X86 && !BFHRF_DISABLE_SIMD

}  // namespace

std::size_t popcount_words(ConstWordSpan words) noexcept {
#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)
  if (avx2_wide(words.size())) {
    return popcount_words_avx2(words.data(), words.size());
  }
#endif
  std::size_t total = 0;
  for (std::uint64_t w : words) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

int compare_words(ConstWordSpan a, ConstWordSpan b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      return a[i] < b[i] ? -1 : 1;
    }
  }
  return 0;
}

bool equal_words(ConstWordSpan a, ConstWordSpan b) noexcept {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

std::size_t popcount_and(ConstWordSpan a, ConstWordSpan b) noexcept {
#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)
  if (avx2_wide(a.size())) {
    return popcount_pair_avx2<PairOp::And>(a.data(), b.data(), a.size());
  }
#endif
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
  }
  return total;
}

std::size_t popcount_or(ConstWordSpan a, ConstWordSpan b) noexcept {
#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)
  if (avx2_wide(a.size())) {
    return popcount_pair_avx2<PairOp::Or>(a.data(), b.data(), a.size());
  }
#endif
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] | b[i]));
  }
  return total;
}

std::size_t popcount_xor(ConstWordSpan a, ConstWordSpan b) noexcept {
#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)
  if (avx2_wide(a.size())) {
    return popcount_pair_avx2<PairOp::Xor>(a.data(), b.data(), a.size());
  }
#endif
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
  }
  return total;
}

std::size_t popcount_andnot(ConstWordSpan a, ConstWordSpan b) noexcept {
#if defined(BFHRF_SIMD_X86) && !defined(BFHRF_DISABLE_SIMD)
  if (avx2_wide(a.size())) {
    return popcount_pair_avx2<PairOp::AndNot>(a.data(), b.data(), a.size());
  }
#endif
  std::size_t total = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    total += static_cast<std::size_t>(std::popcount(a[i] & ~b[i]));
  }
  return total;
}

bool any_and(ConstWordSpan a, ConstWordSpan b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & b[i]) != 0) {
      return true;
    }
  }
  return false;
}

bool any_andnot(ConstWordSpan a, ConstWordSpan b) noexcept {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if ((a[i] & ~b[i]) != 0) {
      return true;
    }
  }
  return false;
}

void and_words(std::span<std::uint64_t> dst, ConstWordSpan src) noexcept {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] &= src[i];
  }
}

void or_words(std::span<std::uint64_t> dst, ConstWordSpan src) noexcept {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] |= src[i];
  }
}

void xor_words(std::span<std::uint64_t> dst, ConstWordSpan src) noexcept {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] ^= src[i];
  }
}

void store_canonical(std::uint64_t* dst, const std::uint64_t* side,
                     const std::uint64_t* mask, bool flip,
                     std::size_t words) noexcept {
  const std::uint64_t sel = flip ? ~std::uint64_t{0} : 0;
  for (std::size_t i = 0; i < words; ++i) {
    dst[i] = side[i] ^ (mask[i] & sel);
  }
}

void DynamicBitset::clear() noexcept {
  std::fill(words_.begin(), words_.end(), 0);
}

bool DynamicBitset::any() const noexcept {
  return std::any_of(words_.begin(), words_.end(),
                     [](std::uint64_t w) { return w != 0; });
}

void DynamicBitset::flip_all() noexcept {
  for (auto& w : words_) {
    w = ~w;
  }
  // Keep bits beyond size() zero so hashing/equality stay canonical.
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << tail) - 1;
  }
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& o) {
  check_same_size(o);
  or_words(words_, o.words_);
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& o) {
  check_same_size(o);
  and_words(words_, o.words_);
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& o) {
  check_same_size(o);
  xor_words(words_, o.words_);
  return *this;
}

bool DynamicBitset::is_subset_of(const DynamicBitset& o) const {
  check_same_size(o);
  return !any_andnot(words_, o.words_);
}

bool DynamicBitset::is_disjoint_with(const DynamicBitset& o) const {
  check_same_size(o);
  return !any_and(words_, o.words_);
}

std::size_t DynamicBitset::find_first() const noexcept {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(words_[w]));
    }
  }
  return size_;
}

std::size_t DynamicBitset::find_next(std::size_t i) const noexcept {
  ++i;
  if (i >= size_) {
    return size_;
  }
  std::size_t w = i >> 6;
  std::uint64_t word = words_[w] & (~std::uint64_t{0} << (i & 63));
  while (true) {
    if (word != 0) {
      return w * 64 + static_cast<std::size_t>(std::countr_zero(word));
    }
    if (++w == words_.size()) {
      return size_;
    }
    word = words_[w];
  }
}

std::string DynamicBitset::to_string() const {
  std::string s(size_, '0');
  for_each_set_bit([&s](std::size_t i) { s[i] = '1'; });
  return s;
}

DynamicBitset DynamicBitset::from_string(std::string_view s) {
  DynamicBitset b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') {
      b.set(i);
    } else if (s[i] != '0') {
      throw ParseError("bad bitset character '" + std::string(1, s[i]) + "'");
    }
  }
  return b;
}

}  // namespace bfhrf::util
