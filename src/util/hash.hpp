// Hash primitives used throughout bfhrf.
//
// All bipartition keys are sequences of 64-bit words; `hash_words` is the
// single mixing function used by the frequency hash (src/core) and the
// HashRF baseline so their behaviour is comparable in benchmarks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace bfhrf::util {

/// SplitMix64 finalizer; a full-avalanche 64-bit mixer (Steele et al.).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine an accumulated hash with one more value (boost-style, 64-bit).
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                                   std::uint64_t v) noexcept {
  return seed ^ (mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash a span of 64-bit words. Deterministic across runs and platforms.
[[nodiscard]] constexpr std::uint64_t hash_words(
    std::span<const std::uint64_t> words, std::uint64_t seed = 0) noexcept {
  std::uint64_t h = mix64(seed ^ (0x9e3779b97f4a7c15ULL + words.size()));
  for (std::uint64_t w : words) {
    h = hash_combine(h, w);
  }
  return h;
}

/// A seeded member of a universal-ish hash family over word spans.
/// HashRF uses two independent members (bucket index + short fingerprint);
/// see Sul & Williams 2008 and src/core/hashrf.hpp.
class SeededWordHash {
 public:
  explicit constexpr SeededWordHash(std::uint64_t seed) noexcept
      : seed_(mix64(seed)) {}

  [[nodiscard]] constexpr std::uint64_t operator()(
      std::span<const std::uint64_t> words) const noexcept {
    return hash_words(words, seed_);
  }

 private:
  std::uint64_t seed_;
};

}  // namespace bfhrf::util
