#include "util/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace bfhrf::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  BFHRF_ASSERT(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw InvalidArgument("table row arity " + std::to_string(row.size()) +
                          " != header arity " +
                          std::to_string(header_.size()));
  }
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  emit(header_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) {
    emit(row);
  }
}

std::string TextTable::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

}  // namespace bfhrf::util
