#include "util/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/error.hpp"

namespace bfhrf::util {

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) {
    ++b;
  }
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
    --e;
  }
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.substr(0, prefix.size()) == prefix;
}

std::size_t parse_size(std::string_view s) {
  s = trim(s);
  std::size_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("expected a non-negative integer, got '" +
                     std::string(s) + "'");
  }
  return v;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw ParseError("expected a number, got '" + std::string(s) + "'");
  }
  return v;
}

std::string format_fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace bfhrf::util
