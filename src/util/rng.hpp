// Deterministic PRNG for simulation and for the HashRF hash family.
//
// xoshiro256++ (Blackman & Vigna) seeded through SplitMix64, so every
// experiment is reproducible from a single 64-bit seed. We deliberately do
// not use std::mt19937_64: xoshiro is faster and its streams are
// platform-stable, which the golden tests rely on.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::util {

class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      s = mix64(x);
    }
  }

  /// Uniform 64-bit value (UniformRandomBitGenerator interface).
  [[nodiscard]] result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Lemire's nearly-divisionless method.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo,
                                         std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform_real(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential variate with the given rate (for coalescent waiting times).
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Derive an independent child stream (for per-thread generators).
  [[nodiscard]] Rng fork() noexcept { return Rng(mix64((*this)())); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace bfhrf::util
