// ThreadSanitizer default suppressions, baked into every binary that
// links bfhrf::util so ctest, scripts/check.sh, and direct test runs
// all agree without TSAN_OPTIONS plumbing.
//
// libstdc++ (observed on GCC 12/13) implements
// std::atomic<std::shared_ptr<T>> with a lock bit spliced into the
// control-block pointer word (_Sp_atomic). load() takes the lock with an
// acquire CAS, copies the raw pointer, then clears the lock bit with a
// *relaxed* store — so when a writer later takes the lock and overwrites
// the pointer, TSan finds no happens-before edge between the reader's
// plain read and the writer's plain write and reports a race. The lock-bit
// RMW still guarantees the two critical sections never overlap in time, so
// the report is a false positive against the implementation's internal
// protocol, not against SnapshotSlot. Suppress exactly that machinery and
// nothing else: frames in our own code still fire.
//
// Scope caveats (docs/TESTING.md):
//  * The match is by frame, so a GENUINE race that happens to cross
//    _Sp_atomic frames — e.g. a plain shared_ptr aliased with an atomic
//    slot and accessed without the atomic API — would be masked too.
//    Audit for that periodically with an unsuppressed build
//    (-DBFHRF_TSAN_NO_DEFAULT_SUPPRESSIONS=ON, see below) and confirm
//    every surviving _Sp_atomic report is the known lock-bit pattern
//    (reader load() vs writer store(), both inside _Sp_atomic frames).
//  * The false positive is a libstdc++ implementation detail and may be
//    fixed in a future release; the suppression is compiled only for
//    libstdc++ builds (__GLIBCXX__) so other standard libraries never
//    inherit it. Re-run the audit after toolchain bumps.
//
// The audit switch is compile-time by necessity: the runtime calls
// __tsan_default_suppressions from .preinit_array during its own
// initialization, before libc has populated environ and before TSan's
// shadow memory and interceptors are ready — an env-var check here either
// crashes (instrumented access / getenv interceptor) or reads an empty
// environment, so there is no reliable runtime hook.

#include <cstdlib>

#if defined(__has_feature)
#define BFHRF_HAS_FEATURE(x) __has_feature(x)
#else
#define BFHRF_HAS_FEATURE(x) 0
#endif

#if (defined(__SANITIZE_THREAD__) || BFHRF_HAS_FEATURE(thread_sanitizer)) && \
    defined(__GLIBCXX__) && !defined(BFHRF_TSAN_NO_DEFAULT_SUPPRESSIONS)

extern "C" const char* __tsan_default_suppressions();

// Runs before shadow/interceptor init (see above): must stay a plain
// literal return, uninstrumented, with no libc calls.
extern "C" __attribute__((no_sanitize("thread"))) const char*
__tsan_default_suppressions() {
  return "race:std::_Sp_atomic\n";
}

#endif
