// ThreadSanitizer default suppressions, baked into every binary that
// links bfhrf::util so ctest, scripts/check.sh, and direct test runs
// all agree without TSAN_OPTIONS plumbing.
//
// libstdc++ (GCC 12) implements std::atomic<std::shared_ptr<T>> with a
// lock bit spliced into the control-block pointer word (_Sp_atomic).
// load() takes the lock with an acquire CAS, copies the raw pointer,
// then clears the lock bit with a *relaxed* store — so when a writer
// later takes the lock and overwrites the pointer, TSan finds no
// happens-before edge between the reader's plain read and the writer's
// plain write and reports a race. The lock-bit RMW still guarantees the
// two critical sections never overlap in time, so the report is a
// false positive against the implementation's internal protocol, not
// against SnapshotSlot. Suppress exactly that machinery and nothing
// else: frames in our own code still fire.

#if defined(__has_feature)
#define BFHRF_HAS_FEATURE(x) __has_feature(x)
#else
#define BFHRF_HAS_FEATURE(x) 0
#endif

#if defined(__SANITIZE_THREAD__) || BFHRF_HAS_FEATURE(thread_sanitizer)

extern "C" const char* __tsan_default_suppressions();

extern "C" const char* __tsan_default_suppressions() {
  return "race:std::_Sp_atomic\n";
}

#endif
