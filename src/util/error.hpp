// Error types and invariant checks shared across the bfhrf library.
//
// Policy (C++ Core Guidelines E.2/E.14): throw typed exceptions for
// recoverable, caller-visible failures (bad input files, mismatched taxa);
// use BFHRF_ASSERT for internal invariants that indicate a library bug.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace bfhrf {

/// Base class for all exceptions thrown by this library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed input (e.g. a bad Newick string or an empty tree file).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A request that is semantically invalid for the given data, e.g. comparing
/// trees over different taxon sets without a restriction step.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// An internal invariant was violated; indicates a bug in this library.
class InvariantError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void invariant_failure(const char* expr,
                                           const std::source_location& loc) {
  throw InvariantError(std::string("invariant violated: ") + expr + " at " +
                       loc.file_name() + ":" + std::to_string(loc.line()));
}
}  // namespace detail

/// Check an internal invariant in all build types (these guards are cheap
/// relative to the work they protect and keep Release behaviour defined).
#define BFHRF_ASSERT(expr)                                             \
  do {                                                                 \
    if (!(expr)) [[unlikely]] {                                        \
      ::bfhrf::detail::invariant_failure(#expr,                        \
                                         std::source_location::current()); \
    }                                                                  \
  } while (false)

}  // namespace bfhrf
