#include "util/rng.hpp"

#include <cmath>

namespace bfhrf::util {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  BFHRF_ASSERT(bound > 0);
  // Lemire 2019: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) noexcept {
  // Inverse CDF; uniform01() < 1 so the log argument is in (0, 1].
  return -std::log1p(-uniform01()) / rate;
}

}  // namespace bfhrf::util
