// Process memory metering, mirroring the paper's "maximum resident memory"
// columns (Figs 1–2, Tables III–V).
//
// Two complementary measurements:
//  * peak_rss_bytes()/current_rss_bytes(): whole-process numbers from
//    /proc/self/status — comparable to the paper's profiler output but
//    monotone (peak never decreases), so per-experiment deltas must be taken
//    with care on long-lived bench processes.
//  * each engine exposes memory_bytes(): exact bytes held by its data
//    structures. This is the number the complexity claims (Table I) are
//    about, and the one the benches fit curves to.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace bfhrf::util {

/// Peak resident set size of this process in bytes (VmHWM), or 0 if
/// unavailable (non-Linux).
[[nodiscard]] std::size_t peak_rss_bytes() noexcept;

/// Current resident set size of this process in bytes (VmRSS), or 0.
[[nodiscard]] std::size_t current_rss_bytes() noexcept;

/// Pretty "12.3 MB"-style rendering used in bench tables.
[[nodiscard]] double bytes_to_mb(std::size_t bytes) noexcept;

/// Cache line size assumed by the aligned containers below. 64 bytes is
/// correct for every x86-64 and the common ARM server cores; a wrong guess
/// costs only a little padding, never correctness.
inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal allocator handing out `Align`-byte-aligned blocks. Used for the
/// frequency-hash control directory and slot arena so SIMD group loads can
/// be aligned and one group probe touches exactly one cache line.
template <typename T, std::size_t Align = kCacheLineBytes>
class AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two >= alignof(T)");

 public:
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}  // NOLINT

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is cache-line aligned.
template <typename T>
using CacheAlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace bfhrf::util
