// Process memory metering, mirroring the paper's "maximum resident memory"
// columns (Figs 1–2, Tables III–V).
//
// Two complementary measurements:
//  * peak_rss_bytes()/current_rss_bytes(): whole-process numbers from
//    /proc/self/status — comparable to the paper's profiler output but
//    monotone (peak never decreases), so per-experiment deltas must be taken
//    with care on long-lived bench processes.
//  * each engine exposes memory_bytes(): exact bytes held by its data
//    structures. This is the number the complexity claims (Table I) are
//    about, and the one the benches fit curves to.
#pragma once

#include <cstddef>
#include <cstdint>

namespace bfhrf::util {

/// Peak resident set size of this process in bytes (VmHWM), or 0 if
/// unavailable (non-Linux).
[[nodiscard]] std::size_t peak_rss_bytes() noexcept;

/// Current resident set size of this process in bytes (VmRSS), or 0.
[[nodiscard]] std::size_t current_rss_bytes() noexcept;

/// Pretty "12.3 MB"-style rendering used in bench tables.
[[nodiscard]] double bytes_to_mb(std::size_t bytes) noexcept;

}  // namespace bfhrf::util
