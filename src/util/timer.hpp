// Wall-clock timing helpers for the benchmark harness.
#pragma once

#include <chrono>

namespace bfhrf::util {

/// Monotonic wall-clock stopwatch. Started on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void restart() noexcept { start_ = Clock::now(); }

  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double minutes() const noexcept { return seconds() / 60.0; }

  [[nodiscard]] double milliseconds() const noexcept {
    return seconds() * 1e3;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bfhrf::util
