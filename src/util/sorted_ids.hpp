// Sorted dense-id set kernels: intersection cardinality over strictly
// increasing uint32 lists.
//
// This is the sparse half of the bit-matrix all-pairs engine
// (core/bit_matrix): when the collection's bipartition universe is wide and
// each tree touches only a sliver of it, a tree is cheaper to hold as a
// sorted list of dense universe ids than as a bit-row, and
// RF(i,j) = d_i + d_j − 2·|ids_i ∩ ids_j| needs exactly one primitive —
// the intersection count below.
//
// Three strategies, picked per call:
//  * scalar two-pointer merge — the baseline, best when the lists are
//    similar in length and short;
//  * galloping — when one list is >= kGallopRatio times the other, binary
//    search (doubling probe) each small-list element into the large list:
//    O(small · log large) instead of O(small + large);
//  * SSE2 4x4 block compare — the Schlegel/Katsogridakis all-pairs
//    comparison: load four ids from each list, compare every pair with
//    three lane rotations, popcount the hit mask, advance whichever block
//    has the smaller maximum. Dispatched behind util::simd::vectorized()
//    so BFHRF_DISABLE_SIMD builds and forced-SWAR runs take the scalar
//    merge; all strategies are exact and byte-identical by construction
//    (tests/util/sorted_ids_test.cpp proves it).
//
// Inputs must be sorted ascending and duplicate-free (the universe-id lists
// are: each tree's bipartition set is deduplicated before encoding).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace bfhrf::util {

/// One list must be at least this many times longer before the galloping
/// path beats the linear merge (probe overhead vs. skipped elements).
inline constexpr std::size_t kGallopRatio = 32;

/// |a ∩ b| by scalar two-pointer merge. Always correct; exposed for the
/// differential tests and as the SWAR fallback.
[[nodiscard]] std::size_t intersect_count_scalar(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) noexcept;

/// |a ∩ b| by galloping search of the smaller list into the larger one.
/// Exposed for the differential tests; the dispatcher picks it only past
/// kGallopRatio size skew.
[[nodiscard]] std::size_t intersect_count_gallop(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) noexcept;

/// |a ∩ b| — the dispatching entry point: galloping on heavy size skew,
/// SSE2 block-compare when vector units are active, scalar merge otherwise.
[[nodiscard]] std::size_t intersect_count_sorted(
    std::span<const std::uint32_t> a, std::span<const std::uint32_t> b) noexcept;

}  // namespace bfhrf::util
