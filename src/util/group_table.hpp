// GroupDirectory: Swiss-table-style control-byte directory for the
// open-addressed frequency hashes (core/frequency_hash, compressed_hash,
// branch_score).
//
// Layout: one byte per slot, 0x80 = empty, 0xfe = deleted (tombstone),
// 0x00..0x7f = the 7-bit tag of the occupant's fingerprint. Bytes are
// probed 16 at a time ("groups") with a single vector compare (SSE2/NEON)
// or two 64-bit SWAR words. The directory is cache-line aligned, so a
// group load is one aligned 16-byte read inside one line, and four
// consecutive groups share a line.
//
// Fingerprint split: the 64-bit key fingerprint fp (util::hash_words)
// provides the low 7 bits as the control tag and the remaining 57 bits as
// the slot hash (home-group index). Using disjoint bits keeps the tag
// uncorrelated with the group choice, so a group's 16 tags behave like
// independent 7-bit samples and a probe's false-candidate rate is ~16/128.
// (The sharded store routes on the TOP fingerprint bits — see
// core/sharded_hash.hpp — which are disjoint from both of these, so a
// per-shard directory behaves exactly like a standalone one.)
//
// Probing: start at the home group, scan tag matches (caller verifies the
// full key), and stop at the first group containing an EMPTY byte — an
// empty byte proves the key was never displaced past it, because erase()
// writes DELETED, never empty. DELETED bytes are skipped by the scan (a
// 7-bit tag can never equal 0xfe) but are remembered: when the key is
// absent, the reported insertion point is the first available (deleted or
// empty) slot along the probe path, so insertions reuse tombstones and a
// delete-then-reinsert cycle restores the original layout. Group stride is
// linear, so the displacement chain is contiguous memory.
//
// The SWAR path may surface false tag candidates on occupied bytes (never
// on empty or deleted ones — see util/simd.hpp); callers' full-key
// verification rejects them, and the empty/available masks are exact on
// every path, so table contents — including tombstone placement — are
// byte-identical across dispatch levels.
//
// The read path is split out as GroupDirectoryView: a non-owning (ctrl
// pointer, slot count) pair carrying every const probing primitive.
// GroupDirectory owns the bytes and delegates probing to its view; a
// mapped on-disk index (core/index_file.hpp) builds views directly over
// the mmapped control sections, so cold-loaded and in-memory tables run
// the exact same probe code. Because the vectorized path issues ALIGNED
// 16-byte loads, any memory a view covers must be at least 16-byte
// aligned; the on-disk format 64-byte-aligns every section and the loader
// rejects files that violate it.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

#include "util/memory.hpp"
#include "util/simd.hpp"

namespace bfhrf::util {

inline constexpr std::size_t kGroupWidth = 16;
inline constexpr std::uint8_t kCtrlEmpty = 0x80;
inline constexpr std::uint8_t kCtrlDeleted = 0xfe;

/// Low 7 bits of the fingerprint: the control tag.
[[nodiscard]] constexpr std::uint8_t ctrl_tag(std::uint64_t fp) noexcept {
  return static_cast<std::uint8_t>(fp & 0x7f);
}

/// Remaining 57 bits: the slot hash that picks the home group.
[[nodiscard]] constexpr std::uint64_t slot_hash(std::uint64_t fp) noexcept {
  return fp >> 7;
}

/// Non-owning read-only view over a control-byte directory. All probing
/// primitives live here; GroupDirectory (below) owns storage and
/// delegates, and mapped index shards construct views straight over the
/// file bytes. The viewed memory must be 16-byte aligned (vector loads)
/// and `slot_count` must be a power of two multiple of kGroupWidth.
class GroupDirectoryView {
 public:
  struct FindResult {
    std::size_t index;   ///< matching slot, or the insertion point (the
                         ///< first deleted-or-empty slot on the probe path)
    bool found;          ///< true when the caller's key predicate matched
    std::uint32_t groups_probed;  ///< control groups inspected (>= 1)
  };

  /// A home group's precomputed tag/empty masks — the first iteration of a
  /// probe, hoisted so pipelined lookups inspect each group exactly once.
  /// Only valid while the directory is unmodified: an insert between
  /// inspect() and find_hinted() can occupy a slot the hint still reports
  /// empty, so hints are strictly for read-only batches.
  struct GroupHint {
    std::uint32_t match_mask;  ///< bytes (possibly) equal to fp's tag
    std::uint32_t empty_mask;  ///< empty bytes (exact on every path)
  };

  GroupDirectoryView() = default;
  GroupDirectoryView(const std::uint8_t* ctrl, std::size_t slot_count) noexcept
      : ctrl_(ctrl), size_(slot_count) {}

  [[nodiscard]] std::size_t slot_count() const noexcept { return size_; }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return size_ / kGroupWidth;
  }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return ctrl_; }
  [[nodiscard]] bool occupied(std::size_t index) const noexcept {
    return ctrl_[index] < kCtrlEmpty;
  }
  [[nodiscard]] bool deleted(std::size_t index) const noexcept {
    return ctrl_[index] == kCtrlDeleted;
  }

  [[nodiscard]] std::size_t home_group(std::uint64_t fp) const noexcept {
    return static_cast<std::size_t>(slot_hash(fp)) & (group_count() - 1);
  }

  /// Prefetch the home control group of `fp` (one cache line).
  void prefetch(std::uint64_t fp) const noexcept {
    __builtin_prefetch(ctrl_ + home_group(fp) * kGroupWidth);
  }

  /// Find the slot whose occupant satisfies `eq` among slots tagged with
  /// fp's tag, or the insertion point (first deleted-or-empty slot on the
  /// probe path) if none does. `eq(slot_index)` is only called on occupied
  /// slots. Statically dispatched variant for hot loops that hoist the
  /// level check.
  template <typename Group, typename Eq>
  [[nodiscard]] FindResult find_with(std::uint64_t fp,
                                     Eq&& eq) const noexcept {
    constexpr std::size_t kNoSlot = ~std::size_t{0};
    const std::size_t gmask = group_count() - 1;
    const std::uint8_t tag = ctrl_tag(fp);
    std::size_t g = static_cast<std::size_t>(slot_hash(fp)) & gmask;
    std::size_t insert_at = kNoSlot;
    std::uint32_t probed = 0;
    while (true) {
      ++probed;
      const std::uint8_t* base = ctrl_ + g * kGroupWidth;
      const Group group = Group::load(base);
      std::uint32_t m = group.match(tag);
      while (m != 0) {
        const std::size_t idx =
            g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
        if (eq(idx)) {
          return {idx, true, probed};
        }
        m &= m - 1;
      }
      if (insert_at == kNoSlot) {
        // First deleted-or-empty slot seen so far: the insertion point if
        // the key turns out to be absent. With no tombstones this is the
        // first empty byte, i.e. the insert-only behaviour.
        const std::uint32_t avail = group.match_available();
        if (avail != 0) {
          insert_at = g * kGroupWidth +
                      static_cast<std::size_t>(std::countr_zero(avail));
        }
      }
      if (group.match_empty() != 0) {
        return {insert_at, false, probed};
      }
      g = (g + 1) & gmask;
    }
  }

  /// Inspect fp's home group once: the stage the batched lookup pipelines
  /// run a few keys ahead of the resolve.
  template <typename Group>
  [[nodiscard]] GroupHint inspect(std::uint64_t fp) const noexcept {
    const Group group = Group::load(ctrl_ + home_group(fp) * kGroupWidth);
    return {group.match(ctrl_tag(fp)), group.match_empty()};
  }

  /// find_with() resuming from a precomputed home-group hint, so the common
  /// home-group hit touches no control memory at resolve time. Read-only
  /// batches only (see GroupHint): on a miss the reported index is the
  /// first EMPTY slot (tombstones are skipped, not claimed), which is fine
  /// for lookups — the slot read there is vacant either way.
  template <typename Group, typename Eq>
  [[nodiscard]] FindResult find_hinted(std::uint64_t fp, GroupHint hint,
                                       Eq&& eq) const noexcept {
    const std::size_t gmask = group_count() - 1;
    std::size_t g = static_cast<std::size_t>(slot_hash(fp)) & gmask;
    std::uint32_t m = hint.match_mask;
    std::uint32_t empty = hint.empty_mask;
    std::uint32_t probed = 1;
    while (true) {
      while (m != 0) {
        const std::size_t idx =
            g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
        if (eq(idx)) {
          return {idx, true, probed};
        }
        m &= m - 1;
      }
      if (empty != 0) {
        return {g * kGroupWidth +
                    static_cast<std::size_t>(std::countr_zero(empty)),
                false, probed};
      }
      g = (g + 1) & gmask;
      ++probed;
      const Group group = Group::load(ctrl_ + g * kGroupWidth);
      m = group.match(ctrl_tag(fp));
      empty = group.match_empty();
    }
  }

  /// Runtime-dispatched find (single-key paths).
  template <typename Eq>
  [[nodiscard]] FindResult find(std::uint64_t fp, Eq&& eq) const noexcept {
    if (simd::vectorized()) {
      return find_with<simd::Group16Vec>(fp, std::forward<Eq>(eq));
    }
    return find_with<simd::Group16Swar>(fp, std::forward<Eq>(eq));
  }

  /// Insertion point for a key known to be absent (rehash loops).
  [[nodiscard]] FindResult find_insert(std::uint64_t fp) const noexcept {
    return find(fp, [](std::size_t) { return false; });
  }

  /// First tag-matching slot in fp's home group, or slot_count() if none.
  /// A prefetch hint for batched lookups: it resolves the likely key-arena
  /// line without walking the displacement chain (SWAR false positives just
  /// prefetch a harmless line).
  template <typename Group>
  [[nodiscard]] std::size_t first_candidate(std::uint64_t fp) const noexcept {
    const std::size_t g = home_group(fp);
    const Group group = Group::load(ctrl_ + g * kGroupWidth);
    const std::uint32_t m = group.match(ctrl_tag(fp));
    if (m == 0) {
      return size_;
    }
    return g * kGroupWidth + static_cast<std::size_t>(std::countr_zero(m));
  }

 private:
  const std::uint8_t* ctrl_ = nullptr;
  std::size_t size_ = 0;
};

class GroupDirectory {
 public:
  using FindResult = GroupDirectoryView::FindResult;
  using GroupHint = GroupDirectoryView::GroupHint;

  GroupDirectory() = default;

  /// Reset to `slot_count` empty slots (dropping any tombstones).
  /// `slot_count` must be a power of two and at least kGroupWidth.
  void reset(std::size_t slot_count) {
    ctrl_.assign(slot_count, kCtrlEmpty);
    tombstones_ = 0;
  }

  /// Adopt a verbatim control-byte image (deserialization warm starts:
  /// the bytes were produced by another GroupDirectory over the same key
  /// set, so probe chains are valid as-is). Tombstones are recounted from
  /// the image.
  void assign(std::span<const std::uint8_t> ctrl) {
    ctrl_.assign(ctrl.begin(), ctrl.end());
    tombstones_ = 0;
    for (const std::uint8_t byte : ctrl_) {
      if (byte == kCtrlDeleted) {
        ++tombstones_;
      }
    }
  }

  /// Non-owning probing view over the current bytes. Invalidated by
  /// reset/assign (reallocation), like any container reference.
  [[nodiscard]] GroupDirectoryView view() const noexcept {
    return {ctrl_.data(), ctrl_.size()};
  }

  [[nodiscard]] std::size_t slot_count() const noexcept {
    return ctrl_.size();
  }
  [[nodiscard]] std::size_t group_count() const noexcept {
    return ctrl_.size() / kGroupWidth;
  }
  [[nodiscard]] bool occupied(std::size_t index) const noexcept {
    return ctrl_[index] < kCtrlEmpty;
  }
  [[nodiscard]] bool deleted(std::size_t index) const noexcept {
    return ctrl_[index] == kCtrlDeleted;
  }

  /// Live tombstones (erased slots not yet reused or compacted away).
  [[nodiscard]] std::size_t tombstone_count() const noexcept {
    return tombstones_;
  }

  /// The raw control bytes (tests / layout-equivalence oracles / the
  /// index-file writer).
  [[nodiscard]] std::span<const std::uint8_t> ctrl_bytes() const noexcept {
    return {ctrl_.data(), ctrl_.size()};
  }

  /// Record `fp`'s tag at a slot returned by a failed find(). Reclaims the
  /// slot's tombstone when the insertion point was a deleted slot.
  void mark(std::size_t index, std::uint64_t fp) noexcept {
    if (ctrl_[index] == kCtrlDeleted) {
      --tombstones_;
    }
    ctrl_[index] = ctrl_tag(fp);
  }

  /// Tombstone an occupied slot. The byte becomes DELETED — never EMPTY —
  /// so probe chains that were displaced past this slot stay intact.
  void erase(std::size_t index) noexcept {
    ctrl_[index] = kCtrlDeleted;
    ++tombstones_;
  }

  [[nodiscard]] std::size_t home_group(std::uint64_t fp) const noexcept {
    return view().home_group(fp);
  }

  /// Prefetch the home control group of `fp` (one cache line).
  void prefetch(std::uint64_t fp) const noexcept { view().prefetch(fp); }

  template <typename Group, typename Eq>
  [[nodiscard]] FindResult find_with(std::uint64_t fp,
                                     Eq&& eq) const noexcept {
    return view().find_with<Group>(fp, std::forward<Eq>(eq));
  }

  template <typename Group>
  [[nodiscard]] GroupHint inspect(std::uint64_t fp) const noexcept {
    return view().inspect<Group>(fp);
  }

  template <typename Group, typename Eq>
  [[nodiscard]] FindResult find_hinted(std::uint64_t fp, GroupHint hint,
                                       Eq&& eq) const noexcept {
    return view().find_hinted<Group>(fp, hint, std::forward<Eq>(eq));
  }

  /// Runtime-dispatched find (single-key paths).
  template <typename Eq>
  [[nodiscard]] FindResult find(std::uint64_t fp, Eq&& eq) const noexcept {
    return view().find(fp, std::forward<Eq>(eq));
  }

  /// Insertion point for a key known to be absent (rehash loops).
  [[nodiscard]] FindResult find_insert(std::uint64_t fp) const noexcept {
    return view().find_insert(fp);
  }

  template <typename Group>
  [[nodiscard]] std::size_t first_candidate(std::uint64_t fp) const noexcept {
    return view().first_candidate<Group>(fp);
  }

  /// Bytes held by the control directory, rounded up to whole cache lines
  /// (the aligned allocator hands out whole lines).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    const std::size_t cap = ctrl_.capacity();
    return (cap + kCacheLineBytes - 1) / kCacheLineBytes * kCacheLineBytes;
  }

 private:
  CacheAlignedVector<std::uint8_t> ctrl_;
  std::size_t tombstones_ = 0;
};

}  // namespace bfhrf::util
