// DynamicBitset: fixed-capacity-at-construction bit vector over uint64 words.
//
// This is the bipartition bitmask encoding from the paper (§II-B): taxa are
// assigned bit positions by the TaxonSet and a bipartition is a length-n bit
// vector recording which side of a removed edge each taxon falls on.
//
// Performance notes:
//  * word storage is inline in a std::vector; for bulk storage of many
//    bipartitions use an arena plus ConstWordSpan views (phylo/bipartition).
//  * the free-function kernels below are the vectorized substrate: fused
//    combine-and-popcount (no temporary materialized), early-exit emptiness
//    tests, and a branchless canonical-flip store. On x86 they dispatch to
//    AVX2 variants at runtime for wide spans (util/simd.hpp policy); the
//    portable fallback is word-at-a-time SWAR that any compiler vectorizes
//    or popcnt-folds at the baseline ISA.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::util {

/// Read-only view of the words of a bit vector whose logical bit count is
/// tracked by its owner. Used for arena-stored bipartitions.
using ConstWordSpan = std::span<const std::uint64_t>;

/// Number of 64-bit words needed to hold `bits` bits.
[[nodiscard]] constexpr std::size_t words_for_bits(std::size_t bits) noexcept {
  return (bits + 63) / 64;
}

/// Count set bits across a word span.
[[nodiscard]] std::size_t popcount_words(ConstWordSpan words) noexcept;

/// Lexicographic-by-word comparison (word 0 first). Spans must be equal size.
[[nodiscard]] int compare_words(ConstWordSpan a, ConstWordSpan b) noexcept;

/// Word-wise equality. Spans must be equal size.
[[nodiscard]] bool equal_words(ConstWordSpan a, ConstWordSpan b) noexcept;

/// Branchless word-wise equality for hot probe loops: an XOR-OR fold with
/// no early exit, inline so short fixed-width keys compile to straight-line
/// code (no call, no spills). Prefer equal_words() off the hot path — the
/// early exit wins on long, frequently-mismatching operands.
[[nodiscard]] inline bool equal_words_fold(const std::uint64_t* a,
                                           const std::uint64_t* b,
                                           std::size_t n) noexcept {
  std::uint64_t diff = 0;
  for (std::size_t i = 0; i < n; ++i) {
    diff |= a[i] ^ b[i];
  }
  return diff == 0;
}

// Fused combine-and-popcount kernels: |a OP b| without materializing the
// combined vector. Spans must be equal size.
[[nodiscard]] std::size_t popcount_and(ConstWordSpan a,
                                       ConstWordSpan b) noexcept;
[[nodiscard]] std::size_t popcount_or(ConstWordSpan a,
                                      ConstWordSpan b) noexcept;
[[nodiscard]] std::size_t popcount_xor(ConstWordSpan a,
                                       ConstWordSpan b) noexcept;
/// |a & ~b| — the subset-defect count.
[[nodiscard]] std::size_t popcount_andnot(ConstWordSpan a,
                                          ConstWordSpan b) noexcept;

/// True if a & b has any set bit (early-exit; !any_and == disjoint).
[[nodiscard]] bool any_and(ConstWordSpan a, ConstWordSpan b) noexcept;
/// True if a & ~b has any set bit (early-exit; !any_andnot == a ⊆ b).
[[nodiscard]] bool any_andnot(ConstWordSpan a, ConstWordSpan b) noexcept;

// Bulk in-place word combines (dst OP= src). Spans must be equal size.
void and_words(std::span<std::uint64_t> dst, ConstWordSpan src) noexcept;
void or_words(std::span<std::uint64_t> dst, ConstWordSpan src) noexcept;
void xor_words(std::span<std::uint64_t> dst, ConstWordSpan src) noexcept;

/// Branchless canonical-polarity store: dst[i] = side[i] ^ (mask[i] & sel)
/// with sel = all-ones when `flip`, else zero — i.e. complement `side`
/// within `mask`'s universe iff `flip`, in a single pass with no branch in
/// the loop. `dst` may not alias `side`/`mask`. Used by bipartition
/// normalization (phylo/bipartition.cpp).
void store_canonical(std::uint64_t* dst, const std::uint64_t* side,
                     const std::uint64_t* mask, bool flip,
                     std::size_t words) noexcept;

class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Construct with `size` bits, all zero.
  explicit DynamicBitset(std::size_t size)
      : size_(size), words_(words_for_bits(size), 0) {}

  /// Construct from raw words (e.g. an arena view). `size` is the bit count;
  /// trailing bits beyond `size` in the last word must be zero.
  DynamicBitset(std::size_t size, ConstWordSpan words)
      : size_(size), words_(words.begin(), words.end()) {
    BFHRF_ASSERT(words.size() == words_for_bits(size));
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t num_words() const noexcept { return words_.size(); }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] ConstWordSpan words() const noexcept { return words_; }
  [[nodiscard]] std::span<std::uint64_t> mutable_words() noexcept {
    return words_;
  }

  void set(std::size_t i) noexcept {
    words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
  }
  void reset(std::size_t i) noexcept {
    words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
  }
  void assign(std::size_t i, bool v) noexcept { v ? set(i) : reset(i); }
  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }

  /// Set all bits to zero without changing size.
  void clear() noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept {
    return popcount_words(words_);
  }

  [[nodiscard]] bool any() const noexcept;
  [[nodiscard]] bool none() const noexcept { return !any(); }
  [[nodiscard]] bool all() const noexcept { return count() == size_; }

  /// Flip every bit (trailing bits in the last word stay zero).
  void flip_all() noexcept;

  /// In-place bitwise operators. Operands must have equal size.
  DynamicBitset& operator|=(const DynamicBitset& o);
  DynamicBitset& operator&=(const DynamicBitset& o);
  DynamicBitset& operator^=(const DynamicBitset& o);

  [[nodiscard]] friend DynamicBitset operator|(DynamicBitset a,
                                               const DynamicBitset& b) {
    a |= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator&(DynamicBitset a,
                                               const DynamicBitset& b) {
    a &= b;
    return a;
  }
  [[nodiscard]] friend DynamicBitset operator^(DynamicBitset a,
                                               const DynamicBitset& b) {
    a ^= b;
    return a;
  }

  /// True if every set bit of *this is also set in `o` (same size required).
  [[nodiscard]] bool is_subset_of(const DynamicBitset& o) const;

  /// True if *this and `o` share no set bit (same size required).
  [[nodiscard]] bool is_disjoint_with(const DynamicBitset& o) const;

  /// Index of the lowest set bit, or size() if none.
  [[nodiscard]] std::size_t find_first() const noexcept;

  /// Index of the lowest set bit strictly greater than `i`, or size() if none.
  [[nodiscard]] std::size_t find_next(std::size_t i) const noexcept;

  /// Invoke `fn(index)` for each set bit in increasing order.
  template <typename Fn>
  void for_each_set_bit(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit =
            static_cast<std::size_t>(std::countr_zero(word));
        fn(w * 64 + bit);
        word &= word - 1;
      }
    }
  }

  [[nodiscard]] bool operator==(const DynamicBitset& o) const noexcept {
    return size_ == o.size_ && words_ == o.words_;
  }

  /// Deterministic, platform-independent hash of the contents.
  [[nodiscard]] std::uint64_t hash() const noexcept {
    return hash_words(words_, size_);
  }

  /// "0"/"1" string, bit 0 (taxon 0) leftmost — matches the orientation used
  /// in unit tests and doc examples; the paper prints bit 0 rightmost, which
  /// is a pure display choice.
  [[nodiscard]] std::string to_string() const;

  /// Parse a "0101" string (bit 0 leftmost). Throws ParseError on bad chars.
  [[nodiscard]] static DynamicBitset from_string(std::string_view s);

  /// Bytes of heap memory held by this bitset.
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  void check_same_size(const DynamicBitset& o) const {
    if (size_ != o.size_) {
      throw InvalidArgument("bitset size mismatch: " + std::to_string(size_) +
                            " vs " + std::to_string(o.size_));
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace bfhrf::util

template <>
struct std::hash<bfhrf::util::DynamicBitset> {
  [[nodiscard]] std::size_t operator()(
      const bfhrf::util::DynamicBitset& b) const noexcept {
    return static_cast<std::size_t>(b.hash());
  }
};
