#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>

namespace bfhrf::util::simd {
namespace {

// Encodes "no force override" as -1; otherwise the forced Level value.
std::atomic<int> g_forced{-1};

Level detect_level() noexcept {
#if defined(BFHRF_DISABLE_SIMD)
  return Level::Swar;
#else
  // Runtime kill switch: BFHRF_DISABLE_SIMD=1 in the environment drops a
  // vector-capable binary to the portable path (read once, cached).
  const char* env = std::getenv("BFHRF_DISABLE_SIMD");
  if (env != nullptr && env[0] == '1' && env[1] == '\0') {
    return Level::Swar;
  }
#if defined(BFHRF_SIMD_X86)
  return __builtin_cpu_supports("avx2") ? Level::Avx2 : Level::Sse2;
#elif defined(BFHRF_SIMD_ARM)
  return Level::Neon;
#else
  return Level::Swar;
#endif
#endif
}

Level detected() noexcept {
  static const Level level = detect_level();
  return level;
}

}  // namespace

std::string_view level_name(Level level) noexcept {
  switch (level) {
    case Level::Swar:
      return "swar";
    case Level::Sse2:
      return "sse2";
    case Level::Neon:
      return "neon";
    case Level::Avx2:
      return "avx2";
  }
  return "unknown";
}

Level active_level() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) {
    return static_cast<Level>(forced);
  }
  return detected();
}

void set_force_level(std::optional<Level> level) noexcept {
  if (!level.has_value()) {
    g_forced.store(-1, std::memory_order_relaxed);
    return;
  }
  Level want = *level;
  // Clamp to what the binary and CPU can actually run.
  const Level ceiling = detected();
  if (static_cast<int>(want) > static_cast<int>(ceiling)) {
    want = ceiling;
  }
  // A Neon request on x86 (or Sse2 on ARM) cannot be honored either.
#if defined(BFHRF_SIMD_X86)
  if (want == Level::Neon) {
    want = Level::Sse2;
  }
#elif defined(BFHRF_SIMD_ARM)
  if (want == Level::Sse2 || want == Level::Avx2) {
    want = Level::Neon;
  }
#else
  want = Level::Swar;
#endif
  if (static_cast<int>(want) > static_cast<int>(ceiling)) {
    want = ceiling;
  }
  g_forced.store(static_cast<int>(want), std::memory_order_relaxed);
}

}  // namespace bfhrf::util::simd
