#include "core/frequency_hash.hpp"

#include <bit>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace bfhrf::core {
namespace {

// probes = slot inspections; collisions = inspections of occupied,
// non-matching slots (i.e. displaced probes). Recorded per probe() walk
// into the thread-local sink, so concurrent read-path lookups stay
// race-free.
const obs::Counter g_probes = obs::counter("core.frequency_hash.probes");
const obs::Counter g_collisions =
    obs::counter("core.frequency_hash.collisions");
const obs::Counter g_inserts = obs::counter("core.frequency_hash.inserts");
const obs::Counter g_merges = obs::counter("core.frequency_hash.merges");

void record_probe(std::size_t steps) noexcept {
  g_probes.inc(steps);
  if (steps > 1) {
    g_collisions.inc(steps - 1);
  }
}

std::size_t table_size_for(std::size_t expected_unique) {
  // Smallest power of two keeping the expected load under kMaxLoad,
  // with a small floor so tiny hashes don't grow immediately.
  std::size_t want = 16;
  while (static_cast<double>(expected_unique) >
         0.7 * static_cast<double>(want)) {
    want <<= 1;
  }
  return want;
}

}  // namespace

FrequencyHash::FrequencyHash(std::size_t n_bits, std::size_t expected_unique)
    : n_bits_(n_bits),
      words_per_(util::words_for_bits(n_bits)),
      slots_(table_size_for(expected_unique)) {
  keys_.reserve(expected_unique * words_per_);
}

std::size_t FrequencyHash::probe(util::ConstWordSpan key,
                                 std::uint64_t fp) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(fp) & mask;
  std::size_t steps = 1;
  while (true) {
    const Slot& s = slots_[idx];
    if (s.count == 0) {
      record_probe(steps);
      return idx;  // empty: insertion point / not found
    }
    // Fingerprint fast-path, then full-key verification: collision-free.
    if (s.fingerprint == fp && util::equal_words(key_at(s.key_index), key)) {
      record_probe(steps);
      return idx;
    }
    idx = (idx + 1) & mask;
    ++steps;
  }
}

void FrequencyHash::add_weighted(util::ConstWordSpan key, std::uint32_t count,
                                 double weight) {
  BFHRF_ASSERT(key.size() == words_per_);
  BFHRF_ASSERT(count > 0);
  if (static_cast<double>(size_ + 1) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    grow();
  }
  g_inserts.inc();
  const std::uint64_t fp = util::hash_words(key);
  const std::size_t idx = probe(key, fp);
  Slot& s = slots_[idx];
  if (s.count == 0) {
    s.fingerprint = fp;
    s.key_index = static_cast<std::uint32_t>(keys_.size() / words_per_);
    keys_.insert(keys_.end(), key.begin(), key.end());
    ++size_;
  }
  s.count += count;
  total_ += count;
  total_weight_ += static_cast<double>(count) * weight;
}

std::uint32_t FrequencyHash::frequency(util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == words_per_);
  const std::uint64_t fp = util::hash_words(key);
  return slots_[probe(key, fp)].count;
}

void FrequencyHash::merge(const FrequencyHash& other) {
  if (other.n_bits_ != n_bits_) {
    throw InvalidArgument("FrequencyHash::merge: universe width mismatch");
  }
  g_merges.inc();
  // Weighted totals must be preserved exactly, so replay each unique key
  // with its aggregate weight contribution. Since weight is a pure function
  // of the key, other's per-key average weight equals the true weight.
  other.for_each([this, &other](util::ConstWordSpan key, std::uint32_t count) {
    (void)other;
    add(key, count);
  });
  // add() accumulated unit weights; fix total_weight_ to account for the
  // true weighted mass moved over.
  total_weight_ += other.total_weight_ - static_cast<double>(other.total_);
}

void FrequencyHash::merge_from(const FrequencyStore& other) {
  const auto* o = dynamic_cast<const FrequencyHash*>(&other);
  if (o == nullptr) {
    throw InvalidArgument("FrequencyHash::merge_from: incompatible store");
  }
  merge(*o);
}

void FrequencyHash::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    std::size_t idx = static_cast<std::size_t>(s.fingerprint) & mask;
    while (slots_[idx].count != 0) {
      idx = (idx + 1) & mask;
    }
    slots_[idx] = s;
  }
}

}  // namespace bfhrf::core
