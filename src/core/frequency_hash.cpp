#include "core/frequency_hash.hpp"

#include <bit>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace bfhrf::core {
namespace {

// probes = slot inspections; collisions = inspections of occupied,
// non-matching slots (i.e. displaced probes). Recorded per probe() walk
// into the thread-local sink, so concurrent read-path lookups stay
// race-free.
const obs::Counter g_probes = obs::counter("core.frequency_hash.probes");
const obs::Counter g_collisions =
    obs::counter("core.frequency_hash.collisions");
const obs::Counter g_inserts = obs::counter("core.frequency_hash.inserts");
const obs::Counter g_merges = obs::counter("core.frequency_hash.merges");

void record_probe(std::size_t steps) noexcept {
  g_probes.inc(steps);
  if (steps > 1) {
    g_collisions.inc(steps - 1);
  }
}

std::size_t table_size_for(std::size_t expected_unique) {
  // Smallest power of two keeping the expected load under kMaxLoad,
  // with a small floor so tiny hashes don't grow immediately.
  std::size_t want = 16;
  while (static_cast<double>(expected_unique) >
         0.7 * static_cast<double>(want)) {
    want <<= 1;
  }
  return want;
}

}  // namespace

FrequencyHash::FrequencyHash(std::size_t n_bits, std::size_t expected_unique)
    : n_bits_(n_bits),
      words_per_(util::words_for_bits(n_bits)),
      slots_(table_size_for(expected_unique)) {
  keys_.reserve(expected_unique * words_per_);
}

std::size_t FrequencyHash::probe(util::ConstWordSpan key,
                                 std::uint64_t fp) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(fp) & mask;
  std::size_t steps = 1;
  while (true) {
    const Slot& s = slots_[idx];
    if (s.count == 0) {
      record_probe(steps);
      return idx;  // empty: insertion point / not found
    }
    // Fingerprint fast-path, then full-key verification: collision-free.
    if (s.fingerprint == fp && util::equal_words(key_at(s.key_index), key)) {
      record_probe(steps);
      return idx;
    }
    idx = (idx + 1) & mask;
    ++steps;
  }
}

void FrequencyHash::add_weighted(util::ConstWordSpan key, std::uint32_t count,
                                 double weight) {
  BFHRF_ASSERT(key.size() == words_per_);
  BFHRF_ASSERT(count > 0);
  if (static_cast<double>(size_ + 1) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    grow();
  }
  g_inserts.inc();
  const std::uint64_t fp = util::hash_words(key);
  const std::size_t idx = probe(key, fp);
  Slot& s = slots_[idx];
  if (s.count == 0) {
    s.fingerprint = fp;
    s.key_index = static_cast<std::uint32_t>(keys_.size() / words_per_);
    keys_.insert(keys_.end(), key.begin(), key.end());
    ++size_;
  }
  s.count += count;
  total_ += count;
  total_weight_ += static_cast<double>(count) * weight;
}

std::size_t FrequencyHash::probe_word(std::uint64_t key,
                                      std::uint64_t fp) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(fp) & mask;
  std::size_t steps = 1;
  while (true) {
    const Slot& s = slots_[idx];
    if (s.count == 0 || (s.fingerprint == fp && keys_[s.key_index] == key)) {
      record_probe(steps);
      return idx;
    }
    idx = (idx + 1) & mask;
    ++steps;
  }
}

std::uint32_t FrequencyHash::frequency(util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == words_per_);
  const std::uint64_t fp = util::hash_words(key);
  return slots_[probe(key, fp)].count;
}

void FrequencyHash::frequency_many(const std::uint64_t* keys,
                                   std::size_t count,
                                   std::uint32_t* out) const {
  // Three-stage prefetch pipeline. Stage A fingerprints key i+kSlotAhead
  // and prefetches its home slot line; stage B, at i+kKeyAhead (slot line
  // now resident), reads the slot and prefetches the key-arena line its
  // verification will touch; stage C resolves key i with both lines hot.
  // In the common no-collision case every memory access of the probe has
  // been prefetched.
  constexpr std::size_t kSlotAhead = 8;
  constexpr std::size_t kKeyAhead = 4;
  static_assert(kKeyAhead < kSlotAhead);
  const std::size_t wp = words_per_;
  const std::size_t mask = slots_.size() - 1;
  const bool one_word = (wp == 1);

  std::uint64_t fps[kSlotAhead];
  const auto key_i = [&](std::size_t i) {
    return util::ConstWordSpan{keys + i * wp, wp};
  };
  const std::size_t warm = count < kSlotAhead ? count : kSlotAhead;
  for (std::size_t i = 0; i < warm; ++i) {
    const std::uint64_t fp = util::hash_words(key_i(i));
    fps[i % kSlotAhead] = fp;
    __builtin_prefetch(&slots_[static_cast<std::size_t>(fp) & mask]);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t fp = fps[i % kSlotAhead];  // read before stage A
                                                   // overwrites the ring slot
    if (i + kSlotAhead < count) {
      const std::uint64_t ahead = util::hash_words(key_i(i + kSlotAhead));
      fps[(i + kSlotAhead) % kSlotAhead] = ahead;
      __builtin_prefetch(&slots_[static_cast<std::size_t>(ahead) & mask]);
    }
    if (i + kKeyAhead < count) {
      const std::uint64_t near = fps[(i + kKeyAhead) % kSlotAhead];
      const Slot& s = slots_[static_cast<std::size_t>(near) & mask];
      if (s.count != 0) {
        __builtin_prefetch(keys_.data() +
                           static_cast<std::size_t>(s.key_index) * wp);
      }
    }
    out[i] = one_word ? slots_[probe_word(keys[i], fp)].count
                      : slots_[probe(key_i(i), fp)].count;
  }
}

void FrequencyHash::add_many(const std::uint64_t* keys, std::size_t count,
                             const double* weights) {
  if (count == 0) {
    return;
  }
  // Pre-size for the worst case (every key new) so the table never rehashes
  // mid-batch: prefetched slot lines stay valid for the whole pipeline.
  if (static_cast<double>(size_ + count) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    std::size_t want = slots_.size();
    while (static_cast<double>(size_ + count) >
           kMaxLoad * static_cast<double>(want)) {
      want <<= 1;
    }
    rehash(want);
  }
  g_inserts.inc(count);

  constexpr std::size_t kSlotAhead = 8;
  constexpr std::size_t kKeyAhead = 4;
  const std::size_t wp = words_per_;
  const std::size_t mask = slots_.size() - 1;
  const bool one_word = (wp == 1);
  // keys_ growth is left to the vector's geometric policy — an exact
  // reserve per batch would reallocate (and copy) the whole arena on
  // almost every call. Arena prefetches read data() fresh each iteration,
  // so intra-batch reallocation is safe.

  std::uint64_t fps[kSlotAhead];
  const auto key_i = [&](std::size_t i) {
    return util::ConstWordSpan{keys + i * wp, wp};
  };
  const std::size_t warm = count < kSlotAhead ? count : kSlotAhead;
  for (std::size_t i = 0; i < warm; ++i) {
    const std::uint64_t fp = util::hash_words(key_i(i));
    fps[i % kSlotAhead] = fp;
    __builtin_prefetch(&slots_[static_cast<std::size_t>(fp) & mask], 1);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t fp = fps[i % kSlotAhead];  // read before the
                                                   // stage-A overwrite
    if (i + kSlotAhead < count) {
      const std::uint64_t ahead = util::hash_words(key_i(i + kSlotAhead));
      fps[(i + kSlotAhead) % kSlotAhead] = ahead;
      __builtin_prefetch(&slots_[static_cast<std::size_t>(ahead) & mask], 1);
    }
    if (i + kKeyAhead < count) {
      const std::uint64_t near = fps[(i + kKeyAhead) % kSlotAhead];
      const Slot& ns = slots_[static_cast<std::size_t>(near) & mask];
      if (ns.count != 0) {
        __builtin_prefetch(keys_.data() +
                           static_cast<std::size_t>(ns.key_index) * wp);
      }
    }
    const std::size_t idx =
        one_word ? probe_word(keys[i], fp) : probe(key_i(i), fp);
    Slot& s = slots_[idx];
    if (s.count == 0) {
      s.fingerprint = fp;
      s.key_index = static_cast<std::uint32_t>(keys_.size() / wp);
      keys_.insert(keys_.end(), keys + i * wp, keys + (i + 1) * wp);
      ++size_;
    }
    s.count += 1;
    total_ += 1;
    total_weight_ += weights != nullptr ? weights[i] : 1.0;
  }
}

void FrequencyHash::reserve(std::size_t expected_unique) {
  keys_.reserve(expected_unique * words_per_);
  std::size_t want = slots_.size();
  while (static_cast<double>(expected_unique) >
         kMaxLoad * static_cast<double>(want)) {
    want <<= 1;
  }
  if (want != slots_.size()) {
    rehash(want);
  }
}

void FrequencyHash::merge(const FrequencyHash& other) {
  if (other.n_bits_ != n_bits_) {
    throw InvalidArgument("FrequencyHash::merge: universe width mismatch");
  }
  g_merges.inc();
  // Weighted totals must be preserved exactly, so replay each unique key
  // with its aggregate weight contribution. Since weight is a pure function
  // of the key, other's per-key average weight equals the true weight.
  other.for_each([this, &other](util::ConstWordSpan key, std::uint32_t count) {
    (void)other;
    add(key, count);
  });
  // add() accumulated unit weights; fix total_weight_ to account for the
  // true weighted mass moved over.
  total_weight_ += other.total_weight_ - static_cast<double>(other.total_);
}

void FrequencyHash::merge_from(const FrequencyStore& other) {
  const auto* o = dynamic_cast<const FrequencyHash*>(&other);
  if (o == nullptr) {
    throw InvalidArgument("FrequencyHash::merge_from: incompatible store");
  }
  merge(*o);
}

void FrequencyHash::grow() { rehash(slots_.size() * 2); }

void FrequencyHash::rehash(std::size_t new_slot_count) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(new_slot_count, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    std::size_t idx = static_cast<std::size_t>(s.fingerprint) & mask;
    while (slots_[idx].count != 0) {
      idx = (idx + 1) & mask;
    }
    slots_[idx] = s;
  }
}

}  // namespace bfhrf::core
