#include "core/frequency_hash.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/simd.hpp"

namespace bfhrf::core {
namespace {

// probes = control GROUPS inspected (16 slots per inspection); collisions =
// displaced inspections beyond the home group. Written to the thread-local
// sink, so concurrent read-path lookups stay race-free; the batched
// pipelines accumulate locally and flush once per batch.
const obs::Counter g_probes = obs::counter("core.frequency_hash.probes");
const obs::Counter g_collisions =
    obs::counter("core.frequency_hash.collisions");
const obs::Counter g_inserts = obs::counter("core.frequency_hash.inserts");
const obs::Counter g_merges = obs::counter("core.frequency_hash.merges");
const obs::Counter g_removes = obs::counter("core.frequency_hash.removes");
const obs::Counter g_compactions =
    obs::counter("core.frequency_hash.compactions");

void record_probe(std::size_t groups) noexcept {
  g_probes.inc(groups);
  if (groups > 1) {
    g_collisions.inc(groups - 1);
  }
}

std::size_t table_size_for(std::size_t expected_unique) {
  // Smallest power of two keeping the expected load under kMaxLoad, with a
  // one-group floor so tiny hashes don't grow immediately.
  std::size_t want = util::kGroupWidth;
  while (static_cast<double>(expected_unique) >
         0.7 * static_cast<double>(want)) {
    want <<= 1;
  }
  return want;
}

}  // namespace

FrequencyHash::FrequencyHash(std::size_t n_bits, std::size_t expected_unique)
    : n_bits_(n_bits), words_per_(util::words_for_bits(n_bits)) {
  const std::size_t slot_count = table_size_for(expected_unique);
  dir_.reset(slot_count);
  slots_.assign(slot_count, Slot{});
  keys_.reserve(expected_unique * words_per_);
}

template <typename Group>
util::GroupDirectory::FindResult FrequencyHash::find_key(
    util::ConstWordSpan key, std::uint64_t fp) const noexcept {
  return dir_.find_with<Group>(fp, [&](std::size_t idx) {
    return util::equal_words_fold(
        keys_.data() + static_cast<std::size_t>(slots_[idx].key_index) *
                           words_per_,
        key.data(), words_per_);
  });
}

void FrequencyHash::add_weighted(util::ConstWordSpan key, std::uint32_t count,
                                 double weight) {
  BFHRF_ASSERT(key.size() == words_per_);
  BFHRF_ASSERT(count > 0);
  ensure_capacity(1);
  g_inserts.inc();
  const std::uint64_t fp = util::hash_words(key);
  const auto r = util::simd::vectorized()
                     ? find_key<util::simd::Group16Vec>(key, fp)
                     : find_key<util::simd::Group16Swar>(key, fp);
  record_probe(r.groups_probed);
  Slot& s = slots_[r.index];
  if (!r.found) {
    dir_.mark(r.index, fp);
    s.key_index = static_cast<std::uint32_t>(keys_.size() / words_per_);
    keys_.insert(keys_.end(), key.begin(), key.end());
    ++size_;
  }
  s.count += count;
  total_ += count;
  total_weight_ += static_cast<double>(count) * weight;
}

void FrequencyHash::remove_at(std::size_t idx, std::uint32_t count,
                              double weight) {
  Slot& s = slots_[idx];
  if (count > s.count) {
    throw InvalidArgument(
        "FrequencyHash::remove: count exceeds stored frequency");
  }
  s.count -= count;
  total_ -= count;
  total_weight_ -= static_cast<double>(count) * weight;
  if (s.count == 0) {
    // Tombstone the control byte (probe chains displaced past this slot
    // stay findable) and zero the slot so miss-path reads still see a zero
    // count there. The arena key goes dead; compact() reclaims it.
    dir_.erase(idx);
    s = Slot{};
    --size_;
  }
}

void FrequencyHash::remove_weighted(util::ConstWordSpan key,
                                    std::uint32_t count, double weight) {
  BFHRF_ASSERT(key.size() == words_per_);
  BFHRF_ASSERT(count > 0);
  g_removes.inc();
  const std::uint64_t fp = util::hash_words(key);
  const auto r = util::simd::vectorized()
                     ? find_key<util::simd::Group16Vec>(key, fp)
                     : find_key<util::simd::Group16Swar>(key, fp);
  record_probe(r.groups_probed);
  if (!r.found) {
    throw InvalidArgument("FrequencyHash::remove: unknown bipartition");
  }
  remove_at(r.index, count, weight);
  maybe_compact();
}

std::uint32_t FrequencyHash::frequency(util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == words_per_);
  const std::uint64_t fp = util::hash_words(key);
  const auto r = util::simd::vectorized()
                     ? find_key<util::simd::Group16Vec>(key, fp)
                     : find_key<util::simd::Group16Swar>(key, fp);
  record_probe(r.groups_probed);
  // An empty slot's count is 0, so found/not-found reads uniformly.
  return slots_[r.index].count;
}

std::uint32_t FrequencyHash::key_index_of(util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == words_per_);
  const std::uint64_t fp = util::hash_words(key);
  const auto r = util::simd::vectorized()
                     ? find_key<util::simd::Group16Vec>(key, fp)
                     : find_key<util::simd::Group16Swar>(key, fp);
  record_probe(r.groups_probed);
  return r.found ? slots_[r.index].key_index : kNoKeyIndex;
}

std::uint32_t FrequencyHashView::frequency(util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == words_per_);
  const std::uint64_t fp = util::hash_words(key);
  const auto r = dir_.find(fp, [&](std::size_t idx) {
    return util::equal_words_fold(
        keys_ + static_cast<std::size_t>(slots_[idx].key_index) * words_per_,
        key.data(), words_per_);
  });
  record_probe(r.groups_probed);
  return slots_[r.index].count;
}

std::uint32_t FrequencyHashView::count_for(std::uint64_t fp,
                                           const std::uint64_t* key,
                                           std::uint64_t& probe_groups) const {
  const std::size_t wp = words_per_;
  util::GroupDirectoryView::FindResult r;
  if (wp == 1) {
    const std::uint64_t k = *key;
    r = dir_.find(fp, [&](std::size_t idx) {
      return keys_[slots_[idx].key_index] == k;
    });
  } else {
    r = dir_.find(fp, [&](std::size_t idx) {
      return util::equal_words_fold(
          keys_ + static_cast<std::size_t>(slots_[idx].key_index) * wp, key,
          wp);
    });
  }
  probe_groups += r.groups_probed;
  return slots_[r.index].count;
}

template <typename Group>
void FrequencyHashView::frequency_many_impl(const std::uint64_t* keys,
                                            std::size_t count,
                                            std::uint32_t* out) const {
  // Four-stage prefetch pipeline, one stage per dependent memory level.
  // Stage A fingerprints key i+kCtrlAhead and prefetches its home CONTROL
  // group (one line — slot lines are not touched blindly). Stage B, at
  // i+kSlotAhead, inspects the now-resident control group once — recording
  // its tag/empty masks as a GroupHint — and prefetches only the slot line
  // holding the first candidate; keys with no tag match (an empty-group
  // miss) never touch slot memory at all. Stage C, at i+kKeyAhead, reads
  // the candidate slot (its line hot from B) and prefetches the key-arena
  // line verification will compare against. Stage D resolves key i from
  // the stored hint, touching no control memory in the home-hit case.
  // Hints stay valid because lookups never mutate the directory.
  constexpr std::size_t kRing = 16;  // power of two: masked ring indexing
  constexpr std::size_t kCtrlAhead = 12;
  constexpr std::size_t kSlotAhead = 8;
  constexpr std::size_t kKeyAhead = 4;
  static_assert(kCtrlAhead < kRing && kKeyAhead < kSlotAhead);
  constexpr std::uint32_t kNoCand = 0xffffffffu;
  const std::size_t wp = words_per_;
  const bool one_word = (wp == 1);

  std::uint64_t fps[kRing];
  util::GroupDirectory::GroupHint hints[kRing];
  std::uint32_t cands[kRing];  // first candidate slot, kNoCand if none
  std::uint64_t probe_groups = 0;  // flushed to obs once per batch
  const auto key_i = [&](std::size_t i) {
    return util::ConstWordSpan{keys + i * wp, wp};
  };
  const auto stage_a = [&](std::size_t j) {
    const std::uint64_t fp = util::hash_words(key_i(j));
    fps[j & (kRing - 1)] = fp;
    dir_.prefetch(fp);
  };
  const auto stage_b = [&](std::size_t j) {
    const std::uint64_t fp = fps[j & (kRing - 1)];
    const auto hint = dir_.inspect<Group>(fp);
    hints[j & (kRing - 1)] = hint;
    std::uint32_t cand = kNoCand;
    if (hint.match_mask != 0) {
      cand = static_cast<std::uint32_t>(
          dir_.home_group(fp) * util::kGroupWidth +
          static_cast<std::size_t>(std::countr_zero(hint.match_mask)));
      __builtin_prefetch(slots_ + cand);
    }
    cands[j & (kRing - 1)] = cand;
  };
  const auto stage_c = [&](std::size_t j) {
    const std::uint32_t cand = cands[j & (kRing - 1)];
    if (cand != kNoCand) {
      __builtin_prefetch(
          keys_ + static_cast<std::size_t>(slots_[cand].key_index) * wp);
    }
  };
  const auto warm = [count](std::size_t ahead) {
    return count < ahead ? count : ahead;
  };
  for (std::size_t i = 0; i < warm(kCtrlAhead); ++i) {
    stage_a(i);
  }
  for (std::size_t i = 0; i < warm(kSlotAhead); ++i) {
    stage_b(i);
  }
  for (std::size_t i = 0; i < warm(kKeyAhead); ++i) {
    stage_c(i);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t fp = fps[i & (kRing - 1)];
    const auto hint = hints[i & (kRing - 1)];
    if (i + kCtrlAhead < count) {
      stage_a(i + kCtrlAhead);
    }
    if (i + kSlotAhead < count) {
      stage_b(i + kSlotAhead);
    }
    if (i + kKeyAhead < count) {
      stage_c(i + kKeyAhead);
    }
    util::GroupDirectory::FindResult r;
    if (one_word) {
      const std::uint64_t k = keys[i];
      r = dir_.find_hinted<Group>(fp, hint, [&](std::size_t idx) {
        return keys_[slots_[idx].key_index] == k;
      });
    } else {
      const std::uint64_t* k = keys + i * wp;
      r = dir_.find_hinted<Group>(fp, hint, [&](std::size_t idx) {
        return util::equal_words_fold(
            keys_ + static_cast<std::size_t>(slots_[idx].key_index) * wp, k,
            wp);
      });
    }
    probe_groups += r.groups_probed;
    out[i] = slots_[r.index].count;
  }
  g_probes.inc(probe_groups);
  if (probe_groups > count) {
    g_collisions.inc(probe_groups - count);
  }
}

void FrequencyHashView::frequency_many(const std::uint64_t* keys,
                                       std::size_t count,
                                       std::uint32_t* out) const {
  // Hoist the dispatch-level check out of the per-key loop.
  if (util::simd::vectorized()) {
    frequency_many_impl<util::simd::Group16Vec>(keys, count, out);
  } else {
    frequency_many_impl<util::simd::Group16Swar>(keys, count, out);
  }
}

void FrequencyHash::frequency_many(const std::uint64_t* keys,
                                   std::size_t count,
                                   std::uint32_t* out) const {
  FrequencyHashView(*this).frequency_many(keys, count, out);
}

template <typename Group>
void FrequencyHash::add_many_impl(const std::uint64_t* keys,
                                  std::size_t count, const double* weights) {
  constexpr std::size_t kGroupAhead = 8;
  constexpr std::size_t kKeyAhead = 4;
  const std::size_t wp = words_per_;
  const bool one_word = (wp == 1);
  const std::size_t nslots = slots_.size();
  // keys_ growth is left to the vector's geometric policy — an exact
  // reserve per batch would reallocate (and copy) the whole arena on
  // almost every call. Arena prefetches read data() fresh each iteration,
  // so intra-batch reallocation is safe.

  std::uint64_t fps[kGroupAhead];
  std::uint64_t probe_groups = 0;  // flushed to obs once per batch
  const auto key_i = [&](std::size_t i) {
    return util::ConstWordSpan{keys + i * wp, wp};
  };
  const auto prefetch_groups = [&](std::uint64_t fp) {
    const std::size_t base = dir_.home_group(fp) * util::kGroupWidth;
    dir_.prefetch(fp);
    __builtin_prefetch(slots_.data() + base, 1);
    __builtin_prefetch(slots_.data() + base + 8, 1);
  };
  const std::size_t warm = count < kGroupAhead ? count : kGroupAhead;
  for (std::size_t i = 0; i < warm; ++i) {
    const std::uint64_t fp = util::hash_words(key_i(i));
    fps[i % kGroupAhead] = fp;
    prefetch_groups(fp);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t fp = fps[i % kGroupAhead];  // read before the
                                                    // stage-A overwrite
    if (i + kGroupAhead < count) {
      const std::uint64_t ahead = util::hash_words(key_i(i + kGroupAhead));
      fps[(i + kGroupAhead) % kGroupAhead] = ahead;
      prefetch_groups(ahead);
    }
    if (i + kKeyAhead < count) {
      const std::uint64_t near = fps[(i + kKeyAhead) % kGroupAhead];
      const std::size_t cand = dir_.first_candidate<Group>(near);
      if (cand != nslots) {
        __builtin_prefetch(
            keys_.data() +
            static_cast<std::size_t>(slots_[cand].key_index) * wp);
      }
    }
    util::GroupDirectory::FindResult r;
    if (one_word) {
      const std::uint64_t k = keys[i];
      r = dir_.find_with<Group>(fp, [&](std::size_t idx) {
        return keys_[slots_[idx].key_index] == k;
      });
    } else {
      r = find_key<Group>(key_i(i), fp);
    }
    probe_groups += r.groups_probed;
    Slot& s = slots_[r.index];
    if (!r.found) {
      dir_.mark(r.index, fp);
      s.key_index = static_cast<std::uint32_t>(keys_.size() / wp);
      keys_.insert(keys_.end(), keys + i * wp, keys + (i + 1) * wp);
      ++size_;
    }
    s.count += 1;
    total_ += 1;
    total_weight_ += weights != nullptr ? weights[i] : 1.0;
  }
  g_probes.inc(probe_groups);
  if (probe_groups > count) {
    g_collisions.inc(probe_groups - count);
  }
}

void FrequencyHash::add_many(const std::uint64_t* keys, std::size_t count,
                             const double* weights) {
  if (count == 0) {
    return;
  }
  // Pre-size for the worst case (every key new) so the table never rehashes
  // mid-batch: prefetched group lines stay valid for the whole pipeline.
  ensure_capacity(count);
  g_inserts.inc(count);
  if (util::simd::vectorized()) {
    add_many_impl<util::simd::Group16Vec>(keys, count, weights);
  } else {
    add_many_impl<util::simd::Group16Swar>(keys, count, weights);
  }
}

template <typename Group>
void FrequencyHash::remove_many_impl(const std::uint64_t* keys,
                                     std::size_t count,
                                     const double* weights) {
  // Same two-stage pipeline as add_many_impl: control+slot group lines
  // prefetched kGroupAhead out, the candidate's key-arena line kKeyAhead
  // out. Removal never grows the table or the arena, so every prefetched
  // line stays valid for the whole batch.
  constexpr std::size_t kGroupAhead = 8;
  constexpr std::size_t kKeyAhead = 4;
  const std::size_t wp = words_per_;
  const bool one_word = (wp == 1);
  const std::size_t nslots = slots_.size();

  std::uint64_t fps[kGroupAhead];
  std::uint64_t probe_groups = 0;  // flushed to obs once per batch
  const auto key_i = [&](std::size_t i) {
    return util::ConstWordSpan{keys + i * wp, wp};
  };
  const auto prefetch_groups = [&](std::uint64_t fp) {
    const std::size_t base = dir_.home_group(fp) * util::kGroupWidth;
    dir_.prefetch(fp);
    __builtin_prefetch(slots_.data() + base, 1);
    __builtin_prefetch(slots_.data() + base + 8, 1);
  };
  const std::size_t warm = count < kGroupAhead ? count : kGroupAhead;
  for (std::size_t i = 0; i < warm; ++i) {
    const std::uint64_t fp = util::hash_words(key_i(i));
    fps[i % kGroupAhead] = fp;
    prefetch_groups(fp);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t fp = fps[i % kGroupAhead];
    if (i + kGroupAhead < count) {
      const std::uint64_t ahead = util::hash_words(key_i(i + kGroupAhead));
      fps[(i + kGroupAhead) % kGroupAhead] = ahead;
      prefetch_groups(ahead);
    }
    if (i + kKeyAhead < count) {
      const std::uint64_t near = fps[(i + kKeyAhead) % kGroupAhead];
      const std::size_t cand = dir_.first_candidate<Group>(near);
      if (cand != nslots) {
        __builtin_prefetch(
            keys_.data() +
            static_cast<std::size_t>(slots_[cand].key_index) * wp);
      }
    }
    util::GroupDirectory::FindResult r;
    if (one_word) {
      const std::uint64_t k = keys[i];
      r = dir_.find_with<Group>(fp, [&](std::size_t idx) {
        return keys_[slots_[idx].key_index] == k;
      });
    } else {
      r = find_key<Group>(key_i(i), fp);
    }
    probe_groups += r.groups_probed;
    if (!r.found) {
      g_probes.inc(probe_groups);
      throw InvalidArgument("FrequencyHash::remove_many: unknown bipartition");
    }
    remove_at(r.index, 1, weights != nullptr ? weights[i] : 1.0);
  }
  g_probes.inc(probe_groups);
  if (probe_groups > count) {
    g_collisions.inc(probe_groups - count);
  }
}

void FrequencyHash::remove_many(const std::uint64_t* keys, std::size_t count,
                                const double* weights) {
  if (count == 0) {
    return;
  }
  g_removes.inc(count);
  if (util::simd::vectorized()) {
    remove_many_impl<util::simd::Group16Vec>(keys, count, weights);
  } else {
    remove_many_impl<util::simd::Group16Swar>(keys, count, weights);
  }
  maybe_compact();
}

void FrequencyHash::reserve(std::size_t expected_unique) {
  keys_.reserve(expected_unique * words_per_);
  std::size_t want = slots_.size();
  while (static_cast<double>(expected_unique) >
         kMaxLoad * static_cast<double>(want)) {
    want <<= 1;
  }
  if (want != slots_.size()) {
    rehash(want);
  }
}

void FrequencyHash::merge(const FrequencyHash& other) {
  if (other.n_bits_ != n_bits_) {
    throw InvalidArgument("FrequencyHash::merge: universe width mismatch");
  }
  g_merges.inc();
  // Weighted totals must be preserved exactly, so replay each unique key
  // with its aggregate weight contribution. Since weight is a pure function
  // of the key, other's per-key average weight equals the true weight.
  other.for_each([this, &other](util::ConstWordSpan key, std::uint32_t count) {
    (void)other;
    add(key, count);
  });
  // add() accumulated unit weights; fix total_weight_ to account for the
  // true weighted mass moved over.
  total_weight_ += other.total_weight_ - static_cast<double>(other.total_);
}

void FrequencyHash::merge_from(const FrequencyStore& other) {
  const auto* o = dynamic_cast<const FrequencyHash*>(&other);
  if (o == nullptr) {
    throw InvalidArgument("FrequencyHash::merge_from: incompatible store");
  }
  merge(*o);
}

void FrequencyHash::adopt_layout(std::span<const std::uint8_t> ctrl,
                                 std::span<const Slot> slots,
                                 std::span<const std::uint64_t> key_words,
                                 std::size_t live_keys,
                                 std::uint64_t total_count,
                                 double total_weight) {
  if (ctrl.size() != slots.size() || ctrl.size() < util::kGroupWidth ||
      !std::has_single_bit(ctrl.size())) {
    throw InvalidArgument(
        "FrequencyHash::adopt_layout: ctrl/slot arrays must be the same "
        "power-of-two length");
  }
  dir_.assign(ctrl);
  slots_.assign(slots.begin(), slots.end());
  keys_.assign(key_words.begin(), key_words.end());
  size_ = live_keys;
  total_ = total_count;
  total_weight_ = total_weight;
}

void FrequencyHash::ensure_capacity(std::size_t incoming) {
  // Occupancy counts tombstones: they don't stop probes, so a table full of
  // live keys + tombstones could otherwise run out of empty bytes and probe
  // forever. The target size is computed from LIVE keys only (rehash drops
  // every tombstone), so a mostly-tombstoned table rehashes at its current
  // size — reclamation, not growth.
  const std::size_t occupancy = size_ + dir_.tombstone_count();
  if (static_cast<double>(occupancy + incoming) <=
      kMaxLoad * static_cast<double>(slots_.size())) {
    return;
  }
  std::size_t want = slots_.size();
  while (static_cast<double>(size_ + incoming) >
         kMaxLoad * static_cast<double>(want)) {
    want <<= 1;
  }
  rehash(want);
}

void FrequencyHash::maybe_compact() {
  if (tombstone_ratio() > kMaxTombstoneRatio) {
    compact();
  }
}

void FrequencyHash::compact() {
  g_compactions.inc();
  // Repack the key arena in old slot order (deterministic across dispatch
  // levels — erase/insert history, not probe paths, decides the order),
  // then re-place every live key at the current slot count. Tombstones die
  // with dir_.reset(); the slot count never shrinks.
  std::vector<std::uint64_t> packed;
  packed.reserve(size_ * words_per_);
  util::CacheAlignedVector<Slot> old = std::move(slots_);
  slots_.assign(old.size(), Slot{});
  dir_.reset(old.size());
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    const util::ConstWordSpan key = key_at(s.key_index);  // old arena
    const std::uint32_t new_index =
        static_cast<std::uint32_t>(packed.size() / words_per_);
    packed.insert(packed.end(), key.begin(), key.end());
    const std::uint64_t fp = util::hash_words(key);
    const auto r = dir_.find_insert(fp);
    dir_.mark(r.index, fp);
    slots_[r.index] = Slot{new_index, s.count};
  }
  keys_ = std::move(packed);
}

void FrequencyHash::rehash(std::size_t new_slot_count) {
  util::CacheAlignedVector<Slot> old = std::move(slots_);
  slots_.assign(new_slot_count, Slot{});
  dir_.reset(new_slot_count);
  // No stored fingerprints: recompute from the retained keys (the arena is
  // untouched by rehashing, so key_at stays valid throughout).
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    const std::uint64_t fp = util::hash_words(key_at(s.key_index));
    const auto r = dir_.find_insert(fp);
    dir_.mark(r.index, fp);
    slots_[r.index] = s;
  }
}

FrequencyHash::ProbeStats FrequencyHash::probe_stats() const {
  ProbeStats st;
  if (size_ == 0) {
    return st;
  }
  const std::size_t gcount = dir_.group_count();
  std::uint64_t total_groups = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].count == 0) {
      continue;
    }
    const std::uint64_t fp = util::hash_words(key_at(slots_[i].key_index));
    const std::size_t home = dir_.home_group(fp);
    const std::size_t displacement =
        ((i / util::kGroupWidth) + gcount - home) & (gcount - 1);
    total_groups += displacement + 1;
    st.max_groups = std::max(st.max_groups, displacement + 1);
  }
  st.mean_groups =
      static_cast<double>(total_groups) / static_cast<double>(size_);
  return st;
}

}  // namespace bfhrf::core
