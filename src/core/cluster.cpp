#include "core/cluster.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace bfhrf::core {
namespace {

/// Lance–Williams update of d(k, i∪j) from d(k,i), d(k,j).
double lw_update(Linkage linkage, double dki, double dkj, std::size_t size_i,
                 std::size_t size_j) {
  switch (linkage) {
    case Linkage::Single:
      return std::min(dki, dkj);
    case Linkage::Complete:
      return std::max(dki, dkj);
    case Linkage::Average:
      return (static_cast<double>(size_i) * dki +
              static_cast<double>(size_j) * dkj) /
             static_cast<double>(size_i + size_j);
  }
  return dki;
}

}  // namespace

Dendrogram hierarchical_cluster(const RfMatrix& matrix, Linkage linkage) {
  const std::size_t r = matrix.size();
  if (r == 0) {
    throw InvalidArgument("hierarchical_cluster: empty matrix");
  }
  Dendrogram out;
  out.num_leaves = r;
  if (r == 1) {
    return out;
  }
  out.merges.reserve(r - 1);

  // Working distance matrix over slots (a slot holds one active cluster).
  std::vector<double> dist(r * r, 0.0);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = i + 1; j < r; ++j) {
      const auto d = static_cast<double>(matrix.at(i, j));
      dist[i * r + j] = d;
      dist[j * r + i] = d;
    }
  }
  std::vector<std::uint8_t> active(r, 1);
  std::vector<std::size_t> cluster_id(r);   // dendrogram id held by a slot
  std::vector<std::size_t> cluster_size(r, 1);
  std::iota(cluster_id.begin(), cluster_id.end(), std::size_t{0});
  std::size_t next_id = r;
  std::size_t remaining = r;

  // Nearest-neighbor chain: follow nearest neighbors until a reciprocal
  // pair appears, merge it, and continue from the chain's remnant. Exact
  // for reducible linkages (single/complete/average all are).
  std::vector<std::size_t> chain;
  chain.reserve(r);
  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t s = 0; s < r; ++s) {
        if (active[s] != 0) {
          chain.push_back(s);
          break;
        }
      }
    }
    while (true) {
      const std::size_t top = chain.back();
      // Nearest active neighbor of `top` (lowest index breaks ties, so the
      // procedure is deterministic).
      std::size_t nearest = r;
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t s = 0; s < r; ++s) {
        if (s == top || active[s] == 0) {
          continue;
        }
        const double d = dist[top * r + s];
        if (d < best) {
          best = d;
          nearest = s;
        }
      }
      BFHRF_ASSERT(nearest < r);
      if (chain.size() >= 2 && nearest == chain[chain.size() - 2]) {
        // Reciprocal pair: merge chain[-1] and chain[-2].
        const std::size_t a = chain[chain.size() - 2];
        const std::size_t b = chain.back();
        chain.pop_back();
        chain.pop_back();

        out.merges.push_back({cluster_id[a], cluster_id[b], best});
        // Merged cluster occupies slot a.
        for (std::size_t s = 0; s < r; ++s) {
          if (active[s] == 0 || s == a || s == b) {
            continue;
          }
          const double updated =
              lw_update(linkage, dist[s * r + a], dist[s * r + b],
                        cluster_size[a], cluster_size[b]);
          dist[s * r + a] = updated;
          dist[a * r + s] = updated;
        }
        active[b] = 0;
        cluster_size[a] += cluster_size[b];
        cluster_id[a] = next_id++;
        --remaining;
        break;
      }
      chain.push_back(nearest);
    }
  }
  return out;
}

std::vector<std::uint32_t> Dendrogram::cut(std::size_t k) const {
  if (k == 0 || k > num_leaves) {
    throw InvalidArgument("Dendrogram::cut: k out of range");
  }
  const std::size_t r = num_leaves;

  // Undo the k-1 highest merges. For monotone (reducible-linkage)
  // hierarchies the top-(k-1) set is upward-closed when height ties prefer
  // the later merge (a consumer always follows its producer in merge
  // order), so the kept merges never reference a cut cluster.
  std::vector<std::size_t> order(merges.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (merges[a].height != merges[b].height) {
      return merges[a].height > merges[b].height;
    }
    return a > b;
  });
  std::vector<std::uint8_t> cut_flag(merges.size(), 0);
  for (std::size_t i = 0; i + 1 < k; ++i) {
    cut_flag[order[i]] = 1;
  }

  // Union-find over dendrogram ids.
  std::vector<std::size_t> parent(r + merges.size());
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  const auto find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (std::size_t m = 0; m < merges.size(); ++m) {
    if (cut_flag[m] != 0) {
      continue;
    }
    const std::size_t a = find(merges[m].left);
    const std::size_t b = find(merges[m].right);
    const std::size_t id = r + m;
    parent[a] = id;
    parent[b] = id;
  }

  std::vector<std::uint32_t> labels(r, 0);
  std::vector<std::size_t> rep_of;  // first-seen component representatives
  for (std::size_t leaf = 0; leaf < r; ++leaf) {
    const std::size_t rep = find(leaf);
    std::size_t idx = rep_of.size();
    for (std::size_t i = 0; i < rep_of.size(); ++i) {
      if (rep_of[i] == rep) {
        idx = i;
        break;
      }
    }
    if (idx == rep_of.size()) {
      rep_of.push_back(rep);
    }
    labels[leaf] = static_cast<std::uint32_t>(idx);
  }
  BFHRF_ASSERT(rep_of.size() == k);
  return labels;
}

KMedoidsResult k_medoids(const RfMatrix& matrix, std::size_t k,
                         util::Rng& rng, std::size_t max_iterations) {
  const std::size_t r = matrix.size();
  if (k == 0 || k > r) {
    throw InvalidArgument("k_medoids: k out of range");
  }
  KMedoidsResult result;
  // Distinct random initial medoids (Floyd's sampling via shuffle prefix).
  std::vector<std::size_t> indices(r);
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  rng.shuffle(indices);
  result.medoids.assign(indices.begin(),
                        indices.begin() + static_cast<std::ptrdiff_t>(k));
  std::sort(result.medoids.begin(), result.medoids.end());
  result.labels.assign(r, 0);

  for (result.iterations = 0; result.iterations < max_iterations;
       ++result.iterations) {
    // Assignment step.
    result.total_cost = 0;
    for (std::size_t i = 0; i < r; ++i) {
      double best = std::numeric_limits<double>::infinity();
      std::uint32_t label = 0;
      for (std::size_t c = 0; c < k; ++c) {
        const auto d = static_cast<double>(matrix.at(i, result.medoids[c]));
        if (d < best) {
          best = d;
          label = static_cast<std::uint32_t>(c);
        }
      }
      result.labels[i] = label;
      result.total_cost += best;
    }
    // Update step: each cluster's new medoid minimizes intra-cluster cost.
    bool changed = false;
    for (std::size_t c = 0; c < k; ++c) {
      double best_cost = std::numeric_limits<double>::infinity();
      std::size_t best_medoid = result.medoids[c];
      for (std::size_t cand = 0; cand < r; ++cand) {
        if (result.labels[cand] != c) {
          continue;
        }
        double cost = 0;
        for (std::size_t other = 0; other < r; ++other) {
          if (result.labels[other] == c) {
            cost += static_cast<double>(matrix.at(cand, other));
          }
        }
        if (cost < best_cost) {
          best_cost = cost;
          best_medoid = cand;
        }
      }
      if (best_medoid != result.medoids[c]) {
        result.medoids[c] = best_medoid;
        changed = true;
      }
    }
    if (!changed) {
      ++result.iterations;
      break;
    }
  }
  return result;
}

}  // namespace bfhrf::core
