// The mmap-able BFHRF index format ("BFHMAP", format v2 alongside the v1
// "BFHv" stream in core/serialize.cpp).
//
// The v1 stream stores (count, key) records and REBUILDS the hash on load —
// every key re-probed, every table line written. This format instead
// persists the built tables verbatim, section-aligned so the file can be
// mmapped read-only and queried IN PLACE:
//
//   offset 0    MappedHeader                (128 bytes, little-endian)
//   offset 128  MappedShardRecord × S       (64 bytes each)
//   aligned 64  shard 0 ctrl bytes          (slot_count bytes)
//   aligned 64  shard 0 slot array          (slot_count × sizeof(Slot))
//   aligned 64  shard 0 key arena           (key_bytes)
//   aligned 64  shard 1 ctrl bytes ... (per shard, in shard order)
//
// Every section starts on a 64-byte boundary (one cache line; also
// satisfies the 16-byte alignment the vectorized group probes require and
// the 8-byte alignment of both slot layouts), so views constructed over
// the mapped bytes run the exact same probe code as in-memory tables —
// cold-load is an mmap + header validation, zero deserialization, and
// query results are bit-identical by construction. Raw stores persist one
// record per shard (ShardedFrequencyHash) or a single record
// (FrequencyHash); compressed stores persist one record whose "key arena"
// is the encoding byte arena.
//
// Tombstones are never persisted: the writer compacts a private copy of
// any shard that carries DELETED ctrl bytes, so a loaded index starts
// dense (ROADMAP "delta-aware index persistence").
//
// Like the v1 stream the format is explicitly little-endian and
// fixed-layout; static_asserts pin the struct sizes. Loading validates
// magic, version, section bounds, 64-byte section alignment, power-of-two
// shard/slot counts, and per-shard vs header totals, throwing ParseError
// on any mismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/compressed_hash.hpp"
#include "core/frequency_hash.hpp"
#include "core/sharded_hash.hpp"

namespace bfhrf::core {

inline constexpr char kMappedMagic[8] = {'B', 'F', 'H', 'M', 'A', 'P', 0, 0};
inline constexpr std::uint32_t kMappedVersion = 1;
inline constexpr std::size_t kMappedSectionAlign = 64;

/// Store kinds a mapped index can hold.
enum class MappedStoreKind : std::uint32_t {
  Raw = 0,         ///< FrequencyHash shards (raw bitmask keys)
  Compressed = 1,  ///< one CompressedFrequencyHash (SparseKeyCodec arena)
};

struct MappedHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t store_kind;  ///< MappedStoreKind
  std::uint32_t flags;       ///< bit 0: include_trivial
  std::uint32_t shard_count;
  std::uint64_t n_bits;
  std::uint64_t words_per_key;
  std::uint64_t reference_trees;
  std::uint64_t unique_keys;
  std::uint64_t total_count;
  double total_weight;
  std::uint64_t file_bytes;  ///< exact file size (truncation check)
  std::uint64_t reserved[6];
};
static_assert(sizeof(MappedHeader) == 128,
              "MappedHeader is part of the on-disk format");

struct MappedShardRecord {
  std::uint64_t slot_count;    ///< power of two, multiple of 16
  std::uint64_t ctrl_offset;   ///< file offsets, all 64-byte aligned
  std::uint64_t slots_offset;
  std::uint64_t keys_offset;
  std::uint64_t key_bytes;     ///< arena length in bytes
  std::uint64_t live_keys;
  std::uint64_t total_count;
  double total_weight;
};
static_assert(sizeof(MappedShardRecord) == 64,
              "MappedShardRecord is part of the on-disk format");

inline constexpr std::uint32_t kMappedFlagIncludeTrivial = 1u << 0;

/// Engine metadata carried in the header (what BfhrfOptions needs back).
/// The store kind is derived from the store's concrete type, not declared
/// here.
struct IndexFileMeta {
  bool include_trivial = false;
  std::size_t reference_trees = 0;
};

/// Write `store` to `path` in the mapped format. Accepts FrequencyHash,
/// ShardedFrequencyHash, and CompressedFrequencyHash stores; shards
/// carrying tombstones are compacted into a private copy first, so the
/// file never contains DELETED ctrl bytes. Throws InvalidArgument for
/// other store types (including an already-mapped store — the file it
/// came from IS the mapped form) and Error on I/O failure.
void write_index_file(const FrequencyStore& store, const IndexFileMeta& meta,
                      const std::string& path);

/// Readahead policy applied to a fresh mapping (madvise on POSIX; a no-op
/// on platforms without it and on the aligned-read fallback, which is
/// already fully resident). Default None: pages fault in on demand — the
/// right policy for sparse probe traffic over a warm cache. WillNeed asks
/// the kernel to start reading the whole file ahead (cold-start serving:
/// the first query burst doesn't eat a page fault per probe). Sequential
/// doubles readahead and drops pages behind the scan (one-shot passes:
/// compaction, external merge, bulk export).
enum class MapAdvice : std::uint8_t { None, WillNeed, Sequential };

/// A validated read-only mapping of an index file. Prefers mmap (the
/// kernel pages sections in on demand); falls back to an aligned in-memory
/// read where mmap is unavailable. Move-only; unmaps on destruction.
class MappedIndex {
 public:
  explicit MappedIndex(const std::string& path,
                       MapAdvice advice = MapAdvice::None);
  ~MappedIndex();

  MappedIndex(MappedIndex&& other) noexcept;
  MappedIndex& operator=(MappedIndex&& other) noexcept;
  MappedIndex(const MappedIndex&) = delete;
  MappedIndex& operator=(const MappedIndex&) = delete;

  [[nodiscard]] const MappedHeader& header() const noexcept {
    return *reinterpret_cast<const MappedHeader*>(base_);
  }
  [[nodiscard]] const MappedShardRecord& shard(std::size_t s) const noexcept {
    return reinterpret_cast<const MappedShardRecord*>(
        base_ + sizeof(MappedHeader))[s];
  }
  [[nodiscard]] std::size_t size_bytes() const noexcept { return size_; }
  /// True when the bytes are an actual mmap (false = aligned-read
  /// fallback). Obs gauge bfhrf.index.mmap.bytes only counts true maps.
  [[nodiscard]] bool is_mmap() const noexcept { return mmapped_; }

  [[nodiscard]] std::span<const std::uint8_t> ctrl(std::size_t s) const {
    const MappedShardRecord& r = shard(s);
    return {base_ + r.ctrl_offset, static_cast<std::size_t>(r.slot_count)};
  }
  [[nodiscard]] std::span<const FrequencyHash::Slot> raw_slots(
      std::size_t s) const {
    const MappedShardRecord& r = shard(s);
    return {reinterpret_cast<const FrequencyHash::Slot*>(base_ +
                                                         r.slots_offset),
            static_cast<std::size_t>(r.slot_count)};
  }
  [[nodiscard]] std::span<const std::uint64_t> raw_keys(std::size_t s) const {
    const MappedShardRecord& r = shard(s);
    return {reinterpret_cast<const std::uint64_t*>(base_ + r.keys_offset),
            static_cast<std::size_t>(r.key_bytes / sizeof(std::uint64_t))};
  }
  [[nodiscard]] std::span<const CompressedFrequencyHash::Slot>
  compressed_slots(std::size_t s) const {
    const MappedShardRecord& r = shard(s);
    return {reinterpret_cast<const CompressedFrequencyHash::Slot*>(
                base_ + r.slots_offset),
            static_cast<std::size_t>(r.slot_count)};
  }
  [[nodiscard]] std::span<const std::byte> compressed_arena(
      std::size_t s) const {
    const MappedShardRecord& r = shard(s);
    return {reinterpret_cast<const std::byte*>(base_ + r.keys_offset),
            static_cast<std::size_t>(r.key_bytes)};
  }

 private:
  void validate(const std::string& path) const;
  void release() noexcept;

  const std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
  bool mmapped_ = false;
  util::CacheAlignedVector<std::uint8_t> fallback_;
};

/// FrequencyStore served directly off a MappedIndex — the zero-copy
/// cold-load path. Read-only: every mutator throws Error. Queries go
/// through the same FrequencyHashView/CompressedHashView probe code as
/// in-memory tables (Bfhrf routes its batched query path through
/// index_view()).
class MappedFrequencyStore final : public FrequencyStore {
 public:
  explicit MappedFrequencyStore(const std::string& path,
                                MapAdvice advice = MapAdvice::None);

  [[nodiscard]] MappedStoreKind kind() const noexcept {
    return static_cast<MappedStoreKind>(index_.header().store_kind);
  }
  [[nodiscard]] bool include_trivial() const noexcept {
    return (index_.header().flags & kMappedFlagIncludeTrivial) != 0;
  }
  [[nodiscard]] std::size_t reference_trees() const noexcept {
    return static_cast<std::size_t>(index_.header().reference_trees);
  }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return index_.header().shard_count;
  }
  [[nodiscard]] const MappedIndex& index() const noexcept { return index_; }

  /// Routing view over the mapped shards (raw kind only; invalid view for
  /// compressed).
  [[nodiscard]] const BfhIndexView& index_view() const noexcept {
    return view_;
  }

  /// Copy the mapped layout into a mutable FrequencyHash over the same
  /// universe — the DynamicBfhIndex warm start (memcpy + tombstone
  /// recount, no per-key re-probing). Raw single-shard only; throws
  /// InvalidArgument otherwise (multi-shard/compressed callers replay
  /// through for_each_key).
  void warm_start(FrequencyHash& target) const;

  // FrequencyStore interface (read-only).
  [[nodiscard]] std::size_t n_bits() const noexcept override {
    return static_cast<std::size_t>(index_.header().n_bits);
  }
  [[nodiscard]] std::size_t unique_count() const noexcept override {
    return static_cast<std::size_t>(index_.header().unique_keys);
  }
  [[nodiscard]] std::uint64_t total_count() const noexcept override {
    return index_.header().total_count;
  }
  [[nodiscard]] double total_weight() const noexcept override {
    return index_.header().total_weight;
  }
  void add_weighted(util::ConstWordSpan key, std::uint32_t count,
                    double weight) override;
  void remove_weighted(util::ConstWordSpan key, std::uint32_t count,
                       double weight) override;
  [[nodiscard]] std::uint32_t frequency(util::ConstWordSpan key)
      const override;
  void merge_from(const FrequencyStore& other) override;
  void for_each_key(const std::function<void(util::ConstWordSpan,
                                             std::uint32_t)>& fn)
      const override;
  [[nodiscard]] std::size_t memory_bytes() const override {
    return index_.size_bytes();
  }
  void set_total_weight(double w) override;

 private:
  [[noreturn]] static void read_only_violation(const char* op);

  MappedIndex index_;
  std::vector<FrequencyHashView> raw_views_;  ///< raw kind, one per shard
  std::uint32_t shard_bits_ = 0;
  BfhIndexView view_;                   ///< raw kind (over raw_views_ copies)
  CompressedHashView compressed_view_;  ///< compressed kind
};

}  // namespace bfhrf::core
