#include "core/consensus.hpp"

#include <algorithm>

#include "phylo/bipartition.hpp"
#include "util/error.hpp"

namespace bfhrf::core {
namespace {

struct Candidate {
  util::DynamicBitset mask;
  std::uint32_t freq = 0;
};

/// Canonical masks all exclude the lowest taxon, so two candidates are
/// compatible iff nested or disjoint (the union-is-universe case cannot
/// occur: both complements contain the lowest taxon).
bool compatible(const util::DynamicBitset& a, const util::DynamicBitset& b) {
  return a.is_disjoint_with(b) || a.is_subset_of(b) || b.is_subset_of(a);
}

}  // namespace

phylo::Tree consensus_tree(const FrequencyStore& hash, std::size_t r,
                           const phylo::TaxonSetPtr& taxa,
                           const ConsensusOptions& opts) {
  if (r == 0) {
    throw InvalidArgument("consensus_tree: empty collection");
  }
  if (!taxa || taxa->size() < 2) {
    throw InvalidArgument("consensus_tree: need at least 2 taxa");
  }
  const std::size_t n = taxa->size();

  // Gather candidate splits above / below the majority threshold.
  const double cutoff = opts.threshold * static_cast<double>(r);
  std::vector<Candidate> cands;
  hash.for_each_key([&](util::ConstWordSpan words, std::uint32_t freq) {
    if (opts.threshold >= 0.5 && static_cast<double>(freq) <= cutoff) {
      return;
    }
    const std::size_t ones = util::popcount_words(words);
    if (ones < 2 || ones > n - 2) {
      return;  // trivial splits add no structure
    }
    cands.push_back({util::DynamicBitset(n, words), freq});
  });

  // Deterministic order: frequency desc, then lexicographic mask.
  std::sort(cands.begin(), cands.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.freq != b.freq) {
                return a.freq > b.freq;
              }
              return util::compare_words(a.mask.words(), b.mask.words()) < 0;
            });

  // Accept mutually compatible splits. For threshold > 0.5 every candidate
  // is compatible by the majority argument; the check is kept as a guard
  // (and does the real work for the greedy threshold <= 0.5 mode).
  std::vector<Candidate> accepted;
  for (auto& c : cands) {
    const bool ok = std::all_of(
        accepted.begin(), accepted.end(),
        [&](const Candidate& a) { return compatible(a.mask, c.mask); });
    if (ok) {
      accepted.push_back(std::move(c));
    }
  }

  // Assemble the laminar family into a tree. Internal "cluster" 0 is the
  // root (the full universe); clusters are inserted largest-first so each
  // one's parent (minimal strict superset) already exists.
  std::sort(accepted.begin(), accepted.end(),
            [](const Candidate& a, const Candidate& b) {
              const std::size_t ca = a.mask.count();
              const std::size_t cb = b.mask.count();
              if (ca != cb) {
                return ca > cb;
              }
              return util::compare_words(a.mask.words(), b.mask.words()) < 0;
            });

  struct Cluster {
    util::DynamicBitset mask;
    std::size_t parent = 0;
    std::uint32_t freq = 0;  ///< 0 for the synthetic root
    std::vector<std::size_t> child_clusters;
    std::vector<phylo::TaxonId> child_taxa;
  };
  std::vector<Cluster> clusters;
  {
    util::DynamicBitset universe(n);
    universe.flip_all();
    clusters.push_back({std::move(universe), 0, 0, {}, {}});
  }
  for (const auto& c : accepted) {
    std::size_t parent = 0;
    std::size_t parent_count = n + 1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (c.mask.is_subset_of(clusters[i].mask)) {
        const std::size_t cnt = clusters[i].mask.count();
        if (cnt < parent_count) {
          parent = i;
          parent_count = cnt;
        }
      }
    }
    clusters.push_back({c.mask, parent, c.freq, {}, {}});
    clusters[parent].child_clusters.push_back(clusters.size() - 1);
  }

  // Each taxon hangs off the minimal cluster containing it.
  for (std::size_t taxon = 0; taxon < n; ++taxon) {
    std::size_t owner = 0;
    std::size_t owner_count = n + 1;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      if (clusters[i].mask.test(taxon)) {
        const std::size_t cnt = clusters[i].mask.count();
        if (cnt < owner_count) {
          owner = i;
          owner_count = cnt;
        }
      }
    }
    clusters[owner].child_taxa.push_back(static_cast<phylo::TaxonId>(taxon));
  }

  // Emit as an arena tree (iterative preorder).
  phylo::Tree tree(taxa);
  std::vector<phylo::NodeId> node_of(clusters.size(), phylo::kNoNode);
  node_of[0] = tree.add_root();
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t ci = stack.back();
    stack.pop_back();
    const phylo::NodeId nid = node_of[ci];
    for (const phylo::TaxonId taxon : clusters[ci].child_taxa) {
      tree.add_leaf(nid, taxon);
    }
    for (const std::size_t child : clusters[ci].child_clusters) {
      node_of[child] = tree.add_child(nid);
      if (opts.annotate_support) {
        tree.set_support(node_of[child],
                         100.0 * static_cast<double>(clusters[child].freq) /
                             static_cast<double>(r));
      }
      stack.push_back(child);
    }
  }
  tree.validate();
  return tree;
}

}  // namespace bfhrf::core
