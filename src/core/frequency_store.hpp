// FrequencyStore: the abstract bipartition-frequency map BFHRF builds on.
//
// Two implementations ship:
//  * FrequencyHash          — raw fixed-width bitmask keys (the default).
//  * CompressedFrequencyHash — losslessly compressed keys (§IX future
//    work: "a loss less and reversible compression of the bipartitions as
//    keys in the hash to further reduce memory").
//
// Both are collision-free (full-key verification) and reversible (keys can
// be enumerated back out), so every consumer — the RF query, variants,
// consensus — works against this interface unchanged.
#pragma once

#include <cstdint>
#include <functional>

#include "util/bitset.hpp"

namespace bfhrf::core {

class FrequencyStore {
 public:
  virtual ~FrequencyStore() = default;

  /// Taxon-universe width in bits.
  [[nodiscard]] virtual std::size_t n_bits() const = 0;

  /// Number of distinct bipartitions stored.
  [[nodiscard]] virtual std::size_t unique_count() const = 0;

  /// Σ frequencies — the paper's sumBFHR (unit-weight form).
  [[nodiscard]] virtual std::uint64_t total_count() const = 0;

  /// Σ weight·frequency — sumBFHR under a weighted variant.
  [[nodiscard]] virtual double total_weight() const = 0;

  /// Add `count` occurrences of a canonical bipartition with a per-key
  /// weight (1.0 for classic RF).
  virtual void add_weighted(util::ConstWordSpan key, std::uint32_t count,
                            double weight) = 0;

  void add(util::ConstWordSpan key, std::uint32_t count = 1) {
    add_weighted(key, count, 1.0);
  }

  /// Remove `count` occurrences of a canonical bipartition with a per-key
  /// weight (the inverse of add_weighted). A key whose frequency reaches
  /// zero is erased from the store. Throws InvalidArgument if the key is
  /// absent or `count` exceeds the stored frequency — frequencies never go
  /// below zero.
  virtual void remove_weighted(util::ConstWordSpan key, std::uint32_t count,
                               double weight) = 0;

  void remove(util::ConstWordSpan key, std::uint32_t count = 1) {
    remove_weighted(key, count, 1.0);
  }

  /// Reclaim storage left behind by removals (tombstoned slots, dead key
  /// bytes). Contents and iteration results are unchanged. Default: no-op
  /// for stores that never fragment.
  virtual void compact() {}

  /// Frequency of a bipartition (0 if absent).
  [[nodiscard]] virtual std::uint32_t frequency(
      util::ConstWordSpan key) const = 0;

  /// Fold another store of the SAME concrete type into this one.
  /// Throws InvalidArgument on type or width mismatch.
  virtual void merge_from(const FrequencyStore& other) = 0;

  /// Hint that ~`expected_unique` distinct keys are coming, so the store
  /// can size its table once instead of growing through a rehash cascade.
  /// Default: no-op.
  virtual void reserve(std::size_t expected_unique) { (void)expected_unique; }

  /// Enumerate every (key, frequency) pair; keys are decoded to the raw
  /// canonical word form. Order unspecified.
  virtual void for_each_key(
      const std::function<void(util::ConstWordSpan, std::uint32_t)>& fn)
      const = 0;

  /// Exact bytes held by the table and key storage.
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  /// Overwrite the weighted total. ONLY for deserialization: per-key
  /// weights are aggregates that cannot be replayed from counts alone, so
  /// loaders re-add keys with unit weights and then restore this total.
  virtual void set_total_weight(double w) = 0;
};

}  // namespace bfhrf::core
