#include "core/restrict.hpp"

#include <vector>

#include "util/error.hpp"

namespace bfhrf::core {

util::DynamicBitset common_taxa(std::span<const phylo::Tree> trees) {
  if (trees.empty()) {
    throw InvalidArgument("common_taxa: empty collection");
  }
  const std::size_t n = trees.front().taxa()->size();
  util::DynamicBitset acc(n);
  acc.flip_all();  // start from the full universe
  util::DynamicBitset mask(n);
  for (const auto& t : trees) {
    if (t.taxa()->size() != n) {
      throw InvalidArgument("common_taxa: mixed taxon universes");
    }
    mask.clear();
    for (const auto leaf : t.leaves()) {
      mask.set(static_cast<std::size_t>(t.node(leaf).taxon));
    }
    acc &= mask;
  }
  return acc;
}

util::DynamicBitset union_taxa(std::span<const phylo::Tree> trees) {
  if (trees.empty()) {
    throw InvalidArgument("union_taxa: empty collection");
  }
  const std::size_t n = trees.front().taxa()->size();
  util::DynamicBitset acc(n);
  for (const auto& t : trees) {
    for (const auto leaf : t.leaves()) {
      acc.set(static_cast<std::size_t>(t.node(leaf).taxon));
    }
  }
  return acc;
}

phylo::Tree restrict_to_taxa(const phylo::Tree& tree,
                             const util::DynamicBitset& keep) {
  using phylo::kNoNode;
  using phylo::NodeId;

  if (keep.size() != tree.taxa()->size()) {
    throw InvalidArgument("restrict_to_taxa: mask width mismatch");
  }

  // Postorder survivor count: a node survives if it keeps >= 1 leaf below.
  const auto order = tree.postorder();
  std::vector<std::uint8_t> survives(tree.num_nodes(), 0);
  std::size_t kept_leaves = 0;
  for (const NodeId id : order) {
    if (tree.is_leaf(id)) {
      const bool k = keep.test(static_cast<std::size_t>(tree.node(id).taxon));
      survives[static_cast<std::size_t>(id)] = k ? 1 : 0;
      kept_leaves += k ? 1 : 0;
    } else {
      std::uint8_t s = 0;
      tree.for_each_child(id, [&](NodeId c) {
        s |= survives[static_cast<std::size_t>(c)];
      });
      survives[static_cast<std::size_t>(id)] = s;
    }
  }
  if (kept_leaves < 2) {
    throw InvalidArgument("restrict_to_taxa: fewer than 2 taxa remain");
  }

  // Rebuild top-down over surviving nodes (unary chains merged as we go).
  phylo::Tree out(tree.taxa());
  out.reserve(2 * kept_leaves);

  struct Item {
    NodeId old_id;
    NodeId new_parent;
    double carried_len;
    bool carried_has_len;
  };

  // Surviving children of `id`, descending through dead subtrees' siblings.
  const auto surviving_children = [&](NodeId id) {
    std::vector<NodeId> kids;
    tree.for_each_child(id, [&](NodeId c) {
      if (survives[static_cast<std::size_t>(c)] != 0) {
        kids.push_back(c);
      }
    });
    return kids;
  };

  // Find the effective root: descend while exactly one surviving child.
  NodeId eff_root = tree.root();
  while (!tree.is_leaf(eff_root)) {
    const auto kids = surviving_children(eff_root);
    BFHRF_ASSERT(!kids.empty());
    if (kids.size() > 1) {
      break;
    }
    eff_root = kids.front();
  }

  std::vector<Item> stack;
  const NodeId new_root = out.add_root();
  if (tree.is_leaf(eff_root)) {
    out.set_taxon(new_root, tree.node(eff_root).taxon);
  } else {
    auto kids = surviving_children(eff_root);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.push_back({*it, new_root, 0.0, false});
    }
  }

  while (!stack.empty()) {
    Item item = stack.back();
    stack.pop_back();
    // Descend through unary survivors, accumulating branch lengths.
    NodeId cur = item.old_id;
    double len = item.carried_len + tree.node(cur).length;
    bool has_len = item.carried_has_len || tree.node(cur).has_length;
    while (!tree.is_leaf(cur)) {
      const auto kids = surviving_children(cur);
      BFHRF_ASSERT(!kids.empty());
      if (kids.size() > 1) {
        break;
      }
      cur = kids.front();
      len += tree.node(cur).length;
      has_len = has_len || tree.node(cur).has_length;
    }
    NodeId nid;
    if (tree.is_leaf(cur)) {
      nid = out.add_leaf(item.new_parent, tree.node(cur).taxon);
    } else {
      nid = out.add_child(item.new_parent);
    }
    if (has_len) {
      out.set_length(nid, len);
    }
    if (!tree.is_leaf(cur)) {
      auto kids = surviving_children(cur);
      for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
        stack.push_back({*it, nid, 0.0, false});
      }
    }
  }
  return out;
}

std::vector<phylo::Tree> restrict_to_common_taxa(
    std::span<const phylo::Tree> trees) {
  const auto shared = common_taxa(trees);
  if (shared.count() < 4) {
    throw InvalidArgument(
        "restrict_to_common_taxa: fewer than 4 shared taxa (" +
        std::to_string(shared.count()) + ")");
  }
  std::vector<phylo::Tree> out;
  out.reserve(trees.size());
  for (const auto& t : trees) {
    out.push_back(restrict_to_taxa(t, shared));
  }
  return out;
}

}  // namespace bfhrf::core
