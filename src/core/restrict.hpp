// Variable-taxa support (paper §VII-E).
//
// The paper's core experiments fix the taxa across all trees, but real
// collections don't; the common supertree-style reduction compares trees
// after restricting each to the taxa they share. Because the frequency
// hash is non-transformative, this is a pure preprocessing step: restrict,
// then run any engine unchanged.
#pragma once

#include <span>

#include "phylo/tree.hpp"
#include "util/bitset.hpp"

namespace bfhrf::core {

/// Taxa present in every tree of the collection (bitmask over the TaxonSet).
[[nodiscard]] util::DynamicBitset common_taxa(
    std::span<const phylo::Tree> trees);

/// Taxa present in at least one tree.
[[nodiscard]] util::DynamicBitset union_taxa(
    std::span<const phylo::Tree> trees);

/// Copy of `tree` pruned to the taxa in `keep` (bits indexed by TaxonId),
/// with resulting unary nodes suppressed and branch lengths summed across
/// suppressed nodes. The TaxonSet is shared, unchanged. Throws
/// InvalidArgument if fewer than 2 kept taxa remain in the tree.
[[nodiscard]] phylo::Tree restrict_to_taxa(const phylo::Tree& tree,
                                           const util::DynamicBitset& keep);

/// Restrict every tree in the collection to their common taxa — the
/// standard reduction for variable-taxa RF. Throws if fewer than 4 taxa
/// are shared (no non-trivial splits would remain).
[[nodiscard]] std::vector<phylo::Tree> restrict_to_common_taxa(
    std::span<const phylo::Tree> trees);

}  // namespace bfhrf::core
