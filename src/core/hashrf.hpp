// HashRF baseline (Sul & Williams 2008) — the "fast current method" the
// paper compares against.
//
// HashRF computes the *all-versus-all* RF matrix of one collection: every
// bipartition is hashed into an inverted index (bipartition -> list of tree
// ids); each index entry then contributes +1 shared-bipartition credit to
// every pair of trees on its list; RF(i,j) = |B_i| + |B_j| - 2·shared(i,j).
//
// Two fidelity-relevant properties of the original are modeled:
//  * Mode::Compressed keeps only an m-bit double-hash fingerprint per
//    bipartition, exactly the collision-prone scheme the paper criticizes
//    (§III-C): colliding bipartitions merge and RF is underestimated.
//    Mode::Exact verifies full keys (used for correctness baselines).
//  * The r×r matrix is materialized (RfMatrix), reproducing the O(r²)
//    memory growth that kills HashRF at r = 100000 in Table V / Fig 2.
//
// Like the original tool, this engine accepts ONE collection (Q is R) and
// is single-threaded.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/rf_matrix.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

struct HashRfOptions {
  enum class Mode {
    Exact,       ///< full-key verification; collision-free
    Compressed,  ///< fingerprint-only; collisions possible (original scheme)
  };
  Mode mode = Mode::Exact;

  /// Bits of fingerprint kept in Compressed mode (the original's h2 range;
  /// smaller -> more collisions -> more RF error).
  unsigned fingerprint_bits = 32;

  /// Seed of the two-member hash family (h1 bucket, h2 fingerprint).
  std::uint64_t seed = 0x9e3779b9;

  bool include_trivial = false;
};

struct HashRfResult {
  RfMatrix matrix;              ///< all-vs-all RF distances
  std::vector<double> avg_rf;   ///< row means over r (self included, = 0)
  std::size_t unique_bipartitions = 0;
  std::size_t index_memory_bytes = 0;   ///< inverted index footprint
  std::size_t matrix_memory_bytes = 0;  ///< the O(r²) matrix footprint
};

/// Run HashRF over one collection. Throws InvalidArgument on empty input or
/// mixed taxon sets.
[[nodiscard]] HashRfResult hash_rf(std::span<const phylo::Tree> trees,
                                   const HashRfOptions& opts = {});

}  // namespace bfhrf::core
