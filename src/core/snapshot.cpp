#include "core/snapshot.hpp"

#include <utility>

#include "core/serialize.hpp"
#include "phylo/newick.hpp"
#include "util/error.hpp"

namespace bfhrf::core {

IndexSnapshot::IndexSnapshot(Bfhrf engine, phylo::TaxonSetPtr taxa,
                             std::string source)
    : engine_(std::move(engine)),
      taxa_(std::move(taxa)),
      source_(std::move(source)) {
  if (taxa_ == nullptr) {
    throw InvalidArgument("IndexSnapshot needs a taxon set");
  }
  if (engine_.store().n_bits() != taxa_->size()) {
    throw InvalidArgument(
        "IndexSnapshot: engine universe width " +
        std::to_string(engine_.store().n_bits()) +
        " != taxon set size " + std::to_string(taxa_->size()));
  }
  // freeze() is a plain (non-atomic) write. A snapshot is routinely built
  // over a LIVE snapshot's shared namespace (RfServer::publish_file runs on
  // a worker while other workers parse queries against the same TaxonSet),
  // so re-storing `frozen_ = true` there would race with those readers.
  // Skip the write when the set is already frozen; an unfrozen set is by
  // construction still privately owned by the builder.
  if (!taxa_->frozen()) {
    taxa_->freeze();
  }
}

std::shared_ptr<const IndexSnapshot> IndexSnapshot::build(
    phylo::TaxonSetPtr taxa, std::span<const phylo::Tree> reference,
    const BfhrfOptions& opts, std::string source) {
  if (taxa == nullptr) {
    throw InvalidArgument("IndexSnapshot::build needs a taxon set");
  }
  Bfhrf engine(taxa->size(), opts);
  engine.build(reference);
  return std::make_shared<const IndexSnapshot>(
      std::move(engine), std::move(taxa), std::move(source));
}

std::shared_ptr<const IndexSnapshot> IndexSnapshot::open(
    const std::string& path, phylo::TaxonSetPtr taxa,
    const BfhrfOptions& opts) {
  if (taxa == nullptr) {
    throw InvalidArgument("IndexSnapshot::open needs a taxon set");
  }
  Bfhrf engine = load_bfhrf_file(path, opts);
  return std::make_shared<const IndexSnapshot>(std::move(engine),
                                               std::move(taxa), path);
}

double IndexSnapshot::query_newick(std::string_view newick) const {
  const phylo::Tree tree = phylo::parse_newick(newick, taxa_);
  return engine_.query_one(tree);
}

}  // namespace bfhrf::core
