// Branch-score distance via the frequency-hash pattern (paper §IX: "a
// catalog of RF variations").
//
// The Kuhner–Felsenstein branch-score distance generalizes RF from split
// presence to split length: with l_T(b) the length of the edge inducing
// split b in T (0 if b is absent),
//
//   BS²(T, T') = Σ_b ( l_T(b) − l_T'(b) )²        over all splits b.
//
// Classic RF is the special case l ∈ {0, 1}. The same build/query split the
// paper applies to RF applies here because the squared sum is linear in
// per-split statistics of the reference collection:
//
//   Σ_T BS²(T, T')
//     = Σ_b Σ_T l_T(b)²                            (S2, a build-time total)
//       + Σ_{b'∈B(T')} ( r·l'(b')² − 2·l'(b')·Σ_T l_T(b') )
//
// so the hash stores, per unique split, its frequency and Σ l_T(b); one
// global Σ l² completes the query. NOTE the linearity is what makes this
// work — the engine therefore reports the mean SQUARED branch score (the
// mean of per-pair square roots does not decompose).
//
// Unweighted trees have all lengths 0 and score 0; the engine refuses to
// build from them (that silence would otherwise look like agreement).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "phylo/bipartition.hpp"
#include "phylo/tree.hpp"
#include "util/bitset.hpp"
#include "util/group_table.hpp"

namespace bfhrf::core {

struct BranchScoreOptions {
  std::size_t threads = 1;

  /// Include leaf (trivial) splits. Unlike presence-only RF, external
  /// branch lengths carry real signal, so the default is on — matching the
  /// usual branch-score definition.
  bool include_trivial = true;

  /// Which per-edge value to score. BranchLength gives the classic
  /// Kuhner–Felsenstein distance; Support scores disagreement in bootstrap
  /// or posterior support instead (same math, different signal).
  phylo::SplitValue value = phylo::SplitValue::BranchLength;
};

/// Pairwise squared branch-score distance (test oracle; O(n²/64)).
[[nodiscard]] double branch_score_squared(
    const phylo::Tree& a, const phylo::Tree& b,
    const BranchScoreOptions& opts = {});

class BranchScoreBfhrf {
 public:
  explicit BranchScoreBfhrf(std::size_t n_bits,
                            BranchScoreOptions opts = {});

  /// Accumulate the reference collection's per-split length statistics.
  void build(std::span<const phylo::Tree> reference);

  /// Mean squared branch score of each query tree against R.
  [[nodiscard]] std::vector<double> query(
      std::span<const phylo::Tree> queries) const;

  /// Mean squared branch score of one tree. Thread-safe after build.
  [[nodiscard]] double query_one(const phylo::Tree& tree) const;

  [[nodiscard]] std::size_t unique_splits() const noexcept { return size_; }
  [[nodiscard]] std::size_t reference_trees() const noexcept {
    return reference_trees_;
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return dir_.memory_bytes() + slots_.capacity() * sizeof(Slot) +
           keys_.capacity() * sizeof(std::uint64_t);
  }

 private:
  /// Group-probed map: canonical split -> {count, Σ length}. Same
  /// collision-free discipline as FrequencyHash (control-byte tag fast
  /// path + full-key verification; see util/group_table.hpp).
  struct Slot {
    std::uint32_t key_index = 0;
    std::uint32_t count = 0;  ///< 0 marks empty
    double sum_len = 0.0;
  };

  struct LookupResult {
    std::uint32_t count = 0;
    double sum_len = 0.0;
  };

  [[nodiscard]] util::ConstWordSpan key_at(std::uint32_t index) const {
    return {keys_.data() + static_cast<std::size_t>(index) * words_per_,
            words_per_};
  }
  [[nodiscard]] util::GroupDirectory::FindResult find(
      util::ConstWordSpan key, std::uint64_t fp) const noexcept;
  void insert(util::ConstWordSpan key, double length);
  [[nodiscard]] LookupResult lookup(util::ConstWordSpan key) const;
  void add_tree(const phylo::Tree& tree,
                phylo::BipartitionExtractor& extractor);
  [[nodiscard]] double query_one(const phylo::Tree& tree,
                                 phylo::BipartitionExtractor& extractor) const;
  void grow();

  static constexpr double kMaxLoad = 0.7;

  std::size_t n_bits_;
  std::size_t words_per_;
  BranchScoreOptions opts_;
  std::size_t size_ = 0;
  std::size_t reference_trees_ = 0;
  double sum_len_sq_total_ = 0.0;  ///< S2 = Σ_b Σ_T l_T(b)²
  util::GroupDirectory dir_;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> keys_;
};

/// Sequential oracle: mean squared branch score by explicit pairwise
/// computation (for tests and the ablation bench).
[[nodiscard]] std::vector<double> sequential_avg_branch_score(
    std::span<const phylo::Tree> queries,
    std::span<const phylo::Tree> reference,
    const BranchScoreOptions& opts = {});

}  // namespace bfhrf::core
