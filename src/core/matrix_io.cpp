#include "core/matrix_io.hpp"

#include <fstream>
#include <iomanip>
#include <ostream>

#include "util/error.hpp"

namespace bfhrf::core {

void write_phylip_matrix(std::ostream& out, const RfMatrix& matrix,
                         std::span<const std::string> names,
                         const PhylipWriteOptions& opts) {
  const std::size_t r = matrix.size();
  if (!names.empty() && names.size() != r) {
    throw InvalidArgument("write_phylip_matrix: name count mismatch");
  }
  out << r << '\n';
  out << std::fixed << std::setprecision(opts.precision);
  for (std::size_t i = 0; i < r; ++i) {
    std::string name = (i < names.size() && !names[i].empty())
                           ? names[i]
                           : "t" + std::to_string(i);
    if (opts.strict_names) {
      name.resize(10, ' ');
    }
    out << name;
    for (std::size_t j = 0; j < r; ++j) {
      out << (j == 0 && !opts.strict_names ? "\t" : " ")
          << static_cast<double>(matrix.at(i, j));
    }
    out << '\n';
  }
  if (!out) {
    throw Error("write_phylip_matrix: stream write failed");
  }
}

void write_phylip_matrix_file(const std::string& path, const RfMatrix& matrix,
                              std::span<const std::string> names,
                              const PhylipWriteOptions& opts) {
  std::ofstream out(path);
  if (!out) {
    throw Error("write_phylip_matrix: cannot open '" + path + "'");
  }
  write_phylip_matrix(out, matrix, names, opts);
}

}  // namespace bfhrf::core
