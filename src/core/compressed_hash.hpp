// CompressedFrequencyHash — the frequency hash with losslessly compressed
// keys (paper §IX future work). Same collision-free, reversible semantics
// as FrequencyHash; keys live in a byte arena as SparseKeyCodec encodings
// instead of fixed-width bitmasks.
//
// Trade-off (quantified in bench_ablation_hash A4c): key bytes shrink by
// the ratio of n/8 to the smaller side's varint cost — large for big n and
// shallow splits — at the price of an encode per insert/lookup.
//
// Concurrency model matches FrequencyHash: single writer, thread-safe
// concurrent readers after the build (lookups use thread-local scratch).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frequency_store.hpp"
#include "core/key_codec.hpp"
#include "util/group_table.hpp"

namespace bfhrf::core {

class CompressedFrequencyHash final : public FrequencyStore {
 public:
  /// One table slot. Public because the slot array is persisted verbatim by
  /// the mapped index format (core/index_file) and addressed directly by
  /// CompressedHashView over mapped memory. 24 bytes including 4 bytes of
  /// tail padding — the index writer zero-fills records before assigning
  /// fields so persisted padding is deterministic.
  struct Slot {
    std::uint64_t fingerprint = 0;  ///< kept for rehash (encodings are not
                                    ///< re-hashed to recover it)
    std::uint32_t offset = 0;  ///< byte offset of the encoding in arena_
    std::uint32_t length = 0;  ///< encoding length in bytes
    std::uint32_t count = 0;   ///< 0 marks an empty slot
  };
  static_assert(sizeof(Slot) == 24 && alignof(Slot) == 8,
                "Slot layout is part of the on-disk index format");

  explicit CompressedFrequencyHash(std::size_t n_bits,
                                   std::size_t expected_unique = 0);

  [[nodiscard]] std::size_t n_bits() const override { return codec_.n_bits(); }
  [[nodiscard]] std::size_t unique_count() const override { return size_; }
  [[nodiscard]] std::uint64_t total_count() const override { return total_; }
  [[nodiscard]] double total_weight() const override { return total_weight_; }

  void add_weighted(util::ConstWordSpan key, std::uint32_t count,
                    double weight) override;

  /// Remove `count` occurrences; a key reaching zero is tombstoned (same
  /// semantics and InvalidArgument conditions as
  /// FrequencyHash::remove_weighted). Dead encodings linger in the byte
  /// arena until compact().
  void remove_weighted(util::ConstWordSpan key, std::uint32_t count,
                       double weight) override;

  /// Drop tombstones and repack the byte arena; contents and iteration
  /// results are unchanged. Triggered automatically when removals push the
  /// tombstone ratio past kMaxTombstoneRatio.
  void compact() override;

  /// Tombstoned (erased, not yet reclaimed) slots.
  [[nodiscard]] std::size_t tombstone_count() const noexcept {
    return dir_.tombstone_count();
  }

  [[nodiscard]] std::uint32_t frequency(
      util::ConstWordSpan key) const override;

  void merge_from(const FrequencyStore& other) override;

  void set_total_weight(double w) override { total_weight_ = w; }

  void for_each_key(const std::function<void(util::ConstWordSpan,
                                             std::uint32_t)>& fn)
      const override;

  [[nodiscard]] std::size_t memory_bytes() const override {
    return dir_.memory_bytes() + slots_.capacity() * sizeof(Slot) +
           arena_.capacity();
  }

  /// Average encoded key size in bytes (diagnostics / ablation A4c).
  [[nodiscard]] double mean_key_bytes() const noexcept {
    return size_ == 0 ? 0.0
                      : static_cast<double>(arena_.size()) /
                            static_cast<double>(size_);
  }

  /// The control-byte directory (index-file writer / layout oracles).
  [[nodiscard]] const util::GroupDirectory& directory() const noexcept {
    return dir_;
  }

  /// The raw slot array (index-file writer; length is the slot capacity).
  [[nodiscard]] std::span<const Slot> slots() const noexcept {
    return {slots_.data(), slots_.size()};
  }

  /// The raw encoding arena (index-file writer). May contain dead
  /// encodings while tombstones exist; compact() first to persist densely.
  [[nodiscard]] std::span<const std::byte> arena() const noexcept {
    return {arena_.data(), arena_.size()};
  }

  /// Adopt a verbatim (ctrl, slots, arena) image previously produced by a
  /// CompressedFrequencyHash over the same universe — the deserialization
  /// warm start (see FrequencyHash::adopt_layout).
  void adopt_layout(std::span<const std::uint8_t> ctrl,
                    std::span<const Slot> slots,
                    std::span<const std::byte> arena_bytes,
                    std::size_t live_keys, std::uint64_t total_count,
                    double total_weight);

 private:
  /// Group-probed find for the slot matching (`fp`, encoded bytes); see
  /// util/group_table.hpp for the control-byte scheme shared with
  /// FrequencyHash.
  [[nodiscard]] util::GroupDirectory::FindResult find(
      ByteSpan encoded, std::uint64_t fp) const noexcept;

  void ensure_capacity(std::size_t incoming);

  static constexpr double kMaxLoad = 0.7;
  static constexpr double kMaxTombstoneRatio = 0.25;

  SparseKeyCodec codec_;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  double total_weight_ = 0.0;
  util::GroupDirectory dir_;
  std::vector<Slot> slots_;
  std::vector<std::byte> arena_;
};

/// Non-owning read-only view over a CompressedFrequencyHash layout — the
/// mapped-index query path (core/index_file). frequency() encodes the
/// probe key into thread-local scratch and compares encoded bytes against
/// the (possibly mmapped) arena, exactly like the owning store's read
/// path, so mapped and in-memory lookups are bit-identical. All pointed-to
/// memory must outlive the view; the ctrl section must be 16-byte aligned
/// and the slot section 8-byte aligned.
class CompressedHashView {
 public:
  using Slot = CompressedFrequencyHash::Slot;

  CompressedHashView() = default;
  CompressedHashView(std::size_t n_bits, util::GroupDirectoryView dir,
                     const Slot* slots, const std::byte* arena) noexcept
      : codec_(n_bits), dir_(dir), slots_(slots), arena_(arena) {}

  /// View over a live store (invalidated by any mutation of it).
  explicit CompressedHashView(const CompressedFrequencyHash& h) noexcept
      : CompressedHashView(h.n_bits(), h.directory().view(),
                           h.slots().data(), h.arena().data()) {}

  /// Frequency of one bipartition (0 if absent).
  [[nodiscard]] std::uint32_t frequency(util::ConstWordSpan key) const;

 private:
  SparseKeyCodec codec_{1};
  util::GroupDirectoryView dir_;
  const Slot* slots_ = nullptr;
  const std::byte* arena_ = nullptr;
};

}  // namespace bfhrf::core
