// Bit-matrix all-pairs RF engines: dense-universe popcount rows and a
// density-adaptive sparse id-list path.
//
// The succinct-representations direction (PAPERS.md, arXiv 2312.14029)
// applied to the all-pairs product: instead of merging two sorted arenas
// of n-bit bipartition keys per pair (the legacy walk, O(d·n/64) per
// pair), number the collection's unique bipartitions once — a single
// FrequencyHash build assigns each its dense arena index — and re-encode
// every tree against that id space. A pair comparison then touches ids,
// not keys:
//
//   RF(i,j) = d_i + d_j − 2·|ids_i ∩ ids_j|
//
//  * DENSE rows: tree i is a bit-row of U bits; the intersection size is
//    one fused popcount_and sweep (util/bitset, AVX2/SWAR dispatched) —
//    O(U/64) per pair independent of tree size, unbeatable when the
//    universe is narrow (birthday-heavy collections).
//  * SPARSE rows: tree i is a sorted uint32 id list; the intersection is
//    a merge/gallop/SSE2 block-compare (util/sorted_ids) — O(d_i + d_j)
//    per pair, the right shape when U ≈ r·d and dense rows would be
//    mostly-zero word scans.
//
// Scheduling: the upper triangle is cut into tile_rows × tile_rows blocks
// pushed through a BoundedQueue drained by a ThreadPool — work-stealing in
// effect, since any lane takes the next tile regardless of the static
// owner the tile was dealt to. A tile's row band is sized to stay L2-
// resident, so the column stream is the only DRAM traffic.
//
// Everything here is exact: ids are collision-free by FrequencyHash's
// full-key verification, so the engines are bit-identical to the legacy
// merge walk (the qc oracle enforces this across thread counts).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "core/all_pairs.hpp"
#include "core/rf_matrix.hpp"
#include "phylo/bipartition.hpp"

namespace bfhrf::core {

/// Measured shape of a collection's bipartition universe (obs gauges and
/// the Auto engine pick).
struct UniverseStats {
  std::size_t trees = 0;             ///< r
  std::size_t universe_width = 0;    ///< U = distinct bipartitions
  std::uint64_t total_memberships = 0;  ///< Σ d_i (row fills)

  /// Mean fraction of the universe each tree's row occupies, in [0, 1].
  [[nodiscard]] double density() const noexcept {
    const double cells = static_cast<double>(trees) *
                         static_cast<double>(universe_width);
    return cells > 0.0 ? static_cast<double>(total_memberships) / cells : 0.0;
  }
};

/// The Auto decision, exposed pure so the density-threshold boundary is
/// unit-testable without building a collection: BitDense at or above the
/// threshold (opts.density_threshold, 0 = kDefaultDensityThreshold),
/// BitSparse below it. An explicit BitDense/BitSparse in opts is returned
/// unchanged; Legacy is never returned (Auto only picks bit engines).
[[nodiscard]] AllPairsEngine pick_bit_engine(
    const UniverseStats& stats, const AllPairsOptions& opts) noexcept;

/// All-pairs RF over pre-extracted, sorted bipartition sets (one per
/// tree, all the same n_bits) using the bit-matrix engines. `opts.engine`
/// may be Auto, BitDense, or BitSparse (Legacy is the caller's branch —
/// core/all_pairs dispatches it before reaching here). When `stats_out`
/// is non-null the measured universe shape is written there.
[[nodiscard]] RfMatrix bit_matrix_rf(
    std::span<const phylo::BipartitionSet> sets, const AllPairsOptions& opts,
    UniverseStats* stats_out = nullptr);

}  // namespace bfhrf::core
