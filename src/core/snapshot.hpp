// IndexSnapshot: an immutable, serveable version of a built BFH index.
//
// The serving layer (src/serve) hot-swaps index versions under live query
// traffic, which needs a self-contained unit of "everything a query
// touches": the built engine AND the taxon namespace its bitmasks are
// expressed over. An index file stores only bitmasks (core/index_file), so
// a snapshot pins the TaxonSet that gives those bits names — queries
// arriving as Newick text parse against the snapshot's own namespace, and
// a swapped-in snapshot over a different namespace can never be probed
// with stale bit positions.
//
// Immutability contract: after construction the engine is never mutated,
// the taxon set is frozen, and every member function is const — so any
// number of threads may query one snapshot concurrently (Bfhrf::query_one
// is thread-safe after build, and frozen-TaxonSet parsing is lookup-only).
// Updates are modeled as NEW snapshots published through
// parallel::SnapshotSlot, never as in-place edits.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/bfhrf.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

class IndexSnapshot {
 public:
  /// Wrap a built engine. `taxa` is frozen here if not already frozen
  /// (further growth would let two concurrent parses race on the
  /// namespace; the write is SKIPPED on an already-frozen set so a new
  /// snapshot can be built over a live snapshot's shared namespace without
  /// racing its readers); its width must equal the engine's universe
  /// width. `source` is a human-readable origin tag ("inline", a file
  /// path, …) surfaced by stats endpoints.
  IndexSnapshot(Bfhrf engine, phylo::TaxonSetPtr taxa, std::string source);

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

  /// Build an engine over `reference` and wrap it.
  [[nodiscard]] static std::shared_ptr<const IndexSnapshot> build(
      phylo::TaxonSetPtr taxa, std::span<const phylo::Tree> reference,
      const BfhrfOptions& opts = {}, std::string source = "inline");

  /// Open a saved index file (either on-disk format; the magic is sniffed)
  /// against an existing namespace. The file stores no taxon labels, so
  /// `taxa` MUST be the namespace the index was built over — the width is
  /// checked (InvalidArgument on mismatch), the label-to-bit assignment
  /// cannot be and is the caller's contract.
  [[nodiscard]] static std::shared_ptr<const IndexSnapshot> open(
      const std::string& path, phylo::TaxonSetPtr taxa,
      const BfhrfOptions& opts = {});

  /// Average RF of one tree against this snapshot's collection.
  [[nodiscard]] double query_one(const phylo::Tree& tree) const {
    return engine_.query_one(tree);
  }

  [[nodiscard]] std::vector<double> query(
      std::span<const phylo::Tree> queries) const {
    return engine_.query(queries);
  }

  /// Parse a Newick record against the snapshot's namespace and score it.
  /// Throws ParseError on malformed text and InvalidArgument on a taxon
  /// outside the namespace.
  [[nodiscard]] double query_newick(std::string_view newick) const;

  [[nodiscard]] const Bfhrf& engine() const noexcept { return engine_; }
  [[nodiscard]] const phylo::TaxonSetPtr& taxa() const noexcept {
    return taxa_;
  }
  [[nodiscard]] BfhrfStats stats() const { return engine_.stats(); }
  [[nodiscard]] const std::string& source() const noexcept { return source_; }

 private:
  Bfhrf engine_;
  phylo::TaxonSetPtr taxa_;
  std::string source_;
};

}  // namespace bfhrf::core
