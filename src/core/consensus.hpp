// Consensus trees straight out of a frequency hash (paper §IX: "other
// applications of directly using a BFH").
//
// BFH_R already holds exactly what consensus methods need — bipartition
// frequencies over the collection — so majority-rule and greedy consensus
// fall out without touching the trees again:
//
//  * majority-rule (threshold t > 0.5): keep splits with freq > t·r; such
//    splits are pairwise compatible by a counting argument, so they always
//    assemble into a tree.
//  * greedy / extended majority (t <= 0.5): scan splits by decreasing
//    frequency, keeping each one compatible with everything kept so far.
#pragma once

#include <cstddef>

#include "core/frequency_store.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

struct ConsensusOptions {
  /// Frequency threshold as a fraction of r. 0.5 = majority rule.
  /// Values below 0.5 trigger the greedy compatibility scan.
  double threshold = 0.5;

  /// Annotate each consensus clade with its percentage frequency in the
  /// collection as the node's support value (written by write_newick with
  /// write_support = true).
  bool annotate_support = true;
};

/// Build the consensus tree of the collection summarized by `hash`.
/// `r` is the number of trees that went into the hash; `taxa` the shared
/// namespace. The result is an unrooted tree containing every taxon, with
/// one internal edge per accepted bipartition (multifurcating wherever
/// the accepted splits do not resolve the topology).
[[nodiscard]] phylo::Tree consensus_tree(const FrequencyStore& hash,
                                         std::size_t r,
                                         const phylo::TaxonSetPtr& taxa,
                                         const ConsensusOptions& opts = {});

}  // namespace bfhrf::core
