// RF variants framework (paper §VII-F / §IX).
//
// Because the frequency hash is "non-transformative" — it stores real,
// uncompressed bipartitions — any generalized RF that is expressible as a
// per-bipartition *filter* (drop some splits) and/or *weight* (score each
// split) plugs into every engine unchanged, applied identically on the
// reference (hash-build) side and the query side:
//
//   RF_v(T, T') = Σ_{b ∈ B(T) \ B(T')} w(b)  +  Σ_{b ∈ B(T') \ B(T)} w(b)
//                 over bipartitions passing the filter.
//
// Classic RF is filter ≡ true, w ≡ 1. The paper demonstrates bipartition
// size filtering; we additionally ship clade-information weighting (after
// Smith 2020's information-theoretic generalized RF family).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/bitset.hpp"

namespace bfhrf::core {

/// A bipartition, as seen by variant hooks: the canonical side mask plus
/// the universe width. `ones` (the side's popcount) is precomputed because
/// every shipped variant needs it.
struct BipartitionRef {
  util::ConstWordSpan words;
  std::size_t n_bits;
  std::size_t ones;
};

class RfVariant {
 public:
  virtual ~RfVariant() = default;

  /// Human-readable name for tables and CLI output.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Keep this bipartition? Applied on both the reference and query side.
  [[nodiscard]] virtual bool keep(const BipartitionRef& b) const {
    (void)b;
    return true;
  }

  /// Contribution of this bipartition to a symmetric-difference term.
  [[nodiscard]] virtual double weight(const BipartitionRef& b) const {
    (void)b;
    return 1.0;
  }
};

/// Classic RF: keep everything, unit weights.
class ClassicRf final : public RfVariant {
 public:
  [[nodiscard]] std::string name() const override { return "classic"; }
};

/// Bipartition size filter (the variant the paper implements): keep only
/// splits whose smaller side has size in [min_size, max_size].
class SizeFilteredRf final : public RfVariant {
 public:
  SizeFilteredRf(std::size_t min_size, std::size_t max_size)
      : min_size_(min_size), max_size_(max_size) {}

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] bool keep(const BipartitionRef& b) const override {
    const std::size_t small = std::min(b.ones, b.n_bits - b.ones);
    return small >= min_size_ && small <= max_size_;
  }

 private:
  std::size_t min_size_;
  std::size_t max_size_;
};

/// Clade-information weighting: w(b) = -log2 P(split sizes), where P is the
/// fraction of unrooted binary topologies containing a split with the same
/// side sizes. Rare (balanced) splits carry more information than splits
/// near the trivial edge. A practical member of the information-theoretic
/// generalized-RF family (Smith 2020).
class InformationWeightedRf final : public RfVariant {
 public:
  explicit InformationWeightedRf(std::size_t n_taxa);

  [[nodiscard]] std::string name() const override {
    return "information-weighted";
  }
  [[nodiscard]] double weight(const BipartitionRef& b) const override;

 private:
  std::size_t n_taxa_;
  std::vector<double> log_ddf_;  ///< log2 double-factorial table
};

/// Custom variant from lambdas — the one-liner extensibility pitch.
class LambdaRf final : public RfVariant {
 public:
  using KeepFn = std::function<bool(const BipartitionRef&)>;
  using WeightFn = std::function<double(const BipartitionRef&)>;

  LambdaRf(std::string name, KeepFn keep, WeightFn weight)
      : name_(std::move(name)),
        keep_(std::move(keep)),
        weight_(std::move(weight)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] bool keep(const BipartitionRef& b) const override {
    return !keep_ || keep_(b);
  }
  [[nodiscard]] double weight(const BipartitionRef& b) const override {
    return weight_ ? weight_(b) : 1.0;
  }

 private:
  std::string name_;
  KeepFn keep_;
  WeightFn weight_;
};

/// The shared default instance used when callers pass no variant.
[[nodiscard]] const RfVariant& classic_rf();

}  // namespace bfhrf::core
