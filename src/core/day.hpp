// Day's algorithm (Day 1985, the paper's reference [26]) — O(n) pairwise RF.
//
// The paper analyses RF in the bitmask model (O(n²/64) per pair) but cites
// Day's cluster-table method as the linear-time alternative; we implement
// it both as an independent test oracle and as the ablation-A3 engine for
// SequentialRF.
//
// Method: pick the lowest shared taxon x as pivot and view both trees as
// rooted at x's neighbor with leaf x removed. The base tree's leaves are
// ranked by DFS order, making every base cluster a contiguous rank interval
// [L, R]. Intervals are recorded in two direct-index tables (keyed by L for
// rightmost children, by R otherwise — at most one entry per slot, see the
// chain argument in day.cpp). A cluster of the other tree is shared iff its
// rank span is contiguous (max-min+1 == leaf count) and one table confirms
// the interval. RF = (c1 - shared) + (c2 - shared).
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "phylo/tree.hpp"

namespace bfhrf::core {

class DayTable {
 public:
  /// Preprocess `base` (O(n)). `include_trivial` only affects max-RF
  /// accounting: trivial splits are always shared between same-taxa trees,
  /// so the distance itself is unchanged.
  explicit DayTable(const phylo::Tree& base, bool include_trivial = false);

  /// RF(base, other). O(n). Throws InvalidArgument if the leaf sets differ.
  [[nodiscard]] std::size_t rf_against(const phylo::Tree& other) const;

  /// |B(base)| + |B(other)| under the trivial-split convention chosen at
  /// construction — the maximum possible RF for this pair.
  [[nodiscard]] std::size_t max_rf_against(const phylo::Tree& other) const;

  /// {RF, maxRF} in one pass.
  [[nodiscard]] std::pair<std::size_t, std::size_t> rf_and_max(
      const phylo::Tree& other) const;

  /// Non-trivial bipartition count of the base tree.
  [[nodiscard]] std::size_t base_bipartitions() const noexcept {
    return base_clusters_;
  }

 private:
  struct OtherScan {
    std::size_t shared = 0;    ///< clusters common with base
    std::size_t clusters = 0;  ///< non-trivial clusters in other
  };
  [[nodiscard]] OtherScan scan_other(const phylo::Tree& other) const;

  std::size_t n_tree_ = 0;           ///< shared leaf count
  bool include_trivial_ = false;
  phylo::TaxonId pivot_ = phylo::kNoTaxon;
  std::vector<phylo::TaxonId> base_taxa_sorted_;
  std::vector<std::int32_t> rank_of_taxon_;  ///< -1 for absent taxa / pivot
  // Interval tables: table_l_[L] == R for clusters stored by left endpoint,
  // table_r_[R] == L for the rest; -1 marks empty.
  std::vector<std::int32_t> table_l_;
  std::vector<std::int32_t> table_r_;
  std::size_t base_clusters_ = 0;
};

/// Convenience: one-shot Day RF between two trees.
[[nodiscard]] inline std::size_t day_rf(const phylo::Tree& a,
                                        const phylo::Tree& b) {
  return DayTable(a).rf_against(b);
}

}  // namespace bfhrf::core
