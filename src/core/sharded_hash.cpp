#include "core/sharded_hash.hpp"

#include <algorithm>
#include <bit>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::core {
namespace {

// Lookup probes through the shard router (per-shard pipelines account
// their own probes under core.frequency_hash.*; these count only the
// multi-shard routed path).
const obs::Counter g_routed_probes =
    obs::counter("core.sharded_hash.routed_probes");

std::size_t round_up_pow2(std::size_t v) {
  return v <= 1 ? 1 : std::bit_ceil(v);
}

}  // namespace

ShardedFrequencyHash::ShardedFrequencyHash(std::size_t n_bits,
                                           std::size_t shard_count,
                                           std::size_t expected_unique)
    : n_bits_(n_bits) {
  const std::size_t count = round_up_pow2(shard_count);
  shard_bits_ = static_cast<std::uint32_t>(std::countr_zero(count));
  shards_.reserve(count);
  const std::size_t per_shard = expected_unique / count;
  for (std::size_t s = 0; s < count; ++s) {
    // Shards start at their minimum size when no hint is given: their bulk
    // pages should be faulted in by the build worker that fills them
    // (first-touch NUMA placement), not by this constructor's thread.
    shards_.push_back(std::make_unique<FrequencyHash>(n_bits, per_shard));
  }
  stage_keys_.resize(count);
  stage_weights_.resize(count);
}

std::size_t ShardedFrequencyHash::shard_index(util::ConstWordSpan key) const {
  return shard_of(util::hash_words(key), shard_bits_);
}

std::size_t ShardedFrequencyHash::unique_count() const noexcept {
  std::size_t sum = 0;
  for (const auto& s : shards_) {
    sum += s->unique_count();
  }
  return sum;
}

std::uint64_t ShardedFrequencyHash::total_count() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) {
    sum += s->total_count();
  }
  return sum;
}

double ShardedFrequencyHash::total_weight() const noexcept {
  double sum = 0.0;
  for (const auto& s : shards_) {
    sum += s->total_weight();
  }
  return sum;
}

void ShardedFrequencyHash::add_weighted(util::ConstWordSpan key,
                                        std::uint32_t count, double weight) {
  shards_[shard_index(key)]->add_weighted(key, count, weight);
}

void ShardedFrequencyHash::remove_weighted(util::ConstWordSpan key,
                                           std::uint32_t count,
                                           double weight) {
  shards_[shard_index(key)]->remove_weighted(key, count, weight);
}

void ShardedFrequencyHash::add_many(const std::uint64_t* keys,
                                    std::size_t count,
                                    const double* weights) {
  if (count == 0) {
    return;
  }
  const std::size_t wp = words_per_key();
  for (auto& v : stage_keys_) {
    v.clear();
  }
  if (weights != nullptr) {
    for (auto& v : stage_weights_) {
      v.clear();
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t* k = keys + i * wp;
    const std::size_t s =
        shard_of(util::hash_words({k, wp}), shard_bits_);
    stage_keys_[s].insert(stage_keys_[s].end(), k, k + wp);
    if (weights != nullptr) {
      stage_weights_[s].push_back(weights[i]);
    }
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const std::size_t n = stage_keys_[s].size() / wp;
    if (n != 0) {
      shards_[s]->add_many(stage_keys_[s].data(), n,
                           weights != nullptr ? stage_weights_[s].data()
                                              : nullptr);
    }
  }
}

void ShardedFrequencyHash::compact() {
  for (auto& s : shards_) {
    s->compact();
  }
}

std::uint32_t ShardedFrequencyHash::frequency(util::ConstWordSpan key) const {
  return shards_[shard_index(key)]->frequency(key);
}

void ShardedFrequencyHash::merge_from(const FrequencyStore& other) {
  if (const auto* o = dynamic_cast<const ShardedFrequencyHash*>(&other)) {
    if (o->shard_bits_ == shard_bits_ && o->n_bits_ == n_bits_) {
      // Same routing: shards correspond pairwise, merge without re-routing.
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        shards_[s]->merge(o->shard(s));
      }
      return;
    }
  }
  // Different shape (or a plain FrequencyHash): replay keys through the
  // router. Matches FrequencyHash::merge's weighted-total bookkeeping.
  const double other_weight = other.total_weight();
  const double other_total = static_cast<double>(other.total_count());
  other.for_each_key([this](util::ConstWordSpan key, std::uint32_t count) {
    add(key, count);
  });
  set_total_weight(total_weight() + other_weight - other_total);
}

void ShardedFrequencyHash::reserve(std::size_t expected_unique) {
  const std::size_t per_shard = expected_unique / shards_.size();
  for (auto& s : shards_) {
    s->reserve(per_shard);
  }
}

void ShardedFrequencyHash::for_each_key(
    const std::function<void(util::ConstWordSpan, std::uint32_t)>& fn) const {
  for (const auto& s : shards_) {
    s->for_each_key(fn);
  }
}

std::size_t ShardedFrequencyHash::memory_bytes() const {
  std::size_t sum = 0;
  for (const auto& s : shards_) {
    sum += s->memory_bytes();
  }
  return sum;
}

void ShardedFrequencyHash::set_total_weight(double w) {
  // Only shard 0's total is adjusted: per-shard weighted totals are
  // meaningless in isolation (deserialization restores the aggregate), so
  // park the correction where the sum comes out right.
  double others = 0.0;
  for (std::size_t s = 1; s < shards_.size(); ++s) {
    others += shards_[s]->total_weight();
  }
  shards_[0]->set_total_weight(w - others);
}

double ShardedFrequencyHash::shard_skew() const {
  const std::size_t unique = unique_count();
  if (unique == 0) {
    return 1.0;
  }
  std::size_t largest = 0;
  for (const auto& s : shards_) {
    largest = std::max(largest, s->unique_count());
  }
  const double mean =
      static_cast<double>(unique) / static_cast<double>(shards_.size());
  return static_cast<double>(largest) / mean;
}

BfhIndexView::BfhIndexView(const ShardedFrequencyHash& sharded)
    : shard_bits_(sharded.shard_bits()) {
  shards_.reserve(sharded.shard_count());
  for (std::size_t s = 0; s < sharded.shard_count(); ++s) {
    shards_.emplace_back(sharded.shard(s));
  }
}

void BfhIndexView::frequency_many(const std::uint64_t* keys,
                                  std::size_t count,
                                  std::uint32_t* out) const {
  if (shards_.size() == 1) {
    // Single table: the full 4-stage hinted prefetch pipeline.
    shards_[0].frequency_many(keys, count, out);
    return;
  }
  // Multi-shard router: fingerprint + shard a few keys ahead and prefetch
  // each key's home control group inside its owning shard, then resolve
  // in order. Shallower than the single-table pipeline (the shard is a
  // data-dependent indirection), but the control line is resident by
  // resolve time, which is most of the win.
  constexpr std::size_t kAhead = 8;
  const std::size_t wp = shards_[0].words_per_key();
  std::uint64_t fps[kAhead];
  std::uint32_t sids[kAhead];
  std::uint64_t probe_groups = 0;
  const auto stage = [&](std::size_t j) {
    const std::uint64_t fp = util::hash_words({keys + j * wp, wp});
    const std::uint32_t sid =
        static_cast<std::uint32_t>(shard_of(fp, shard_bits_));
    fps[j % kAhead] = fp;
    sids[j % kAhead] = sid;
    shards_[sid].prefetch(fp);
  };
  const std::size_t warm = count < kAhead ? count : kAhead;
  for (std::size_t i = 0; i < warm; ++i) {
    stage(i);
  }
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t fp = fps[i % kAhead];
    const std::uint32_t sid = sids[i % kAhead];
    if (i + kAhead < count) {
      stage(i + kAhead);
    }
    out[i] = shards_[sid].count_for(fp, keys + i * wp, probe_groups);
  }
  g_routed_probes.inc(probe_groups);
}

}  // namespace bfhrf::core
