// TreeSource: a resettable forward stream of trees.
//
// The paper's memory argument (Table I) hinges on *dynamically* loading
// tree collections — only one tree resident at a time. TreeSource is that
// abstraction: engines that accept a TreeSource never materialize the
// collection; engines that accept std::span<const Tree> trade memory for
// zero re-parsing. Both paths are benchmarked.
#pragma once

#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "phylo/newick.hpp"
#include "phylo/tree.hpp"
#include "phylo/vector_codec.hpp"

namespace bfhrf::core {

class TreeSource {
 public:
  virtual ~TreeSource() = default;

  /// Move the next tree into `out`; false at end of stream.
  virtual bool next(phylo::Tree& out) = 0;

  /// Rewind to the first tree (re-opens files; re-iterates spans).
  virtual void reset() = 0;

  /// Total tree count if cheaply known (spans: yes; files: no).
  [[nodiscard]] virtual std::optional<std::size_t> size_hint() const {
    return std::nullopt;
  }
};

/// Adapts an in-memory collection. next() copies (callers that can work
/// over the span directly should; this adapter exists so the streaming
/// engines can be tested against in-memory data).
class SpanTreeSource final : public TreeSource {
 public:
  explicit SpanTreeSource(std::span<const phylo::Tree> trees)
      : trees_(trees) {}

  bool next(phylo::Tree& out) override {
    if (pos_ >= trees_.size()) {
      return false;
    }
    out = trees_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }

  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return trees_.size();
  }

 private:
  std::span<const phylo::Tree> trees_;
  std::size_t pos_ = 0;
};

/// Streams trees from a Newick file; holds one parsed tree at a time.
class FileTreeSource final : public TreeSource {
 public:
  FileTreeSource(std::string path, phylo::TaxonSetPtr taxa,
                 phylo::NewickParseOptions opts = {});

  bool next(phylo::Tree& out) override;
  void reset() override;

  /// Estimated tree count from a one-pass semicolon scan of the file,
  /// computed lazily on first call and cached. Every Newick tree ends
  /// with ';', so this is exact for well-formed files unless ';' also
  /// appears inside quoted labels or [comments] — acceptable for the
  /// reserve/pre-size consumers a hint feeds.
  [[nodiscard]] std::optional<std::size_t> size_hint() const override;

 private:
  void open();

  std::string path_;
  phylo::TaxonSetPtr taxa_;
  phylo::NewickParseOptions opts_;
  std::ifstream in_;
  std::unique_ptr<phylo::NewickReader> reader_;
  mutable std::optional<std::size_t> cached_hint_;
};

/// A resettable forward stream of phylo2vec rows — the text-free ingest
/// path. Every row is over one shared universe of n_taxa() taxa (so
/// rows carry n_taxa()-1 codes).
class VectorSource {
 public:
  virtual ~VectorSource() = default;

  /// Move the next row into `out`; false at end of stream.
  virtual bool next(phylo::TreeVector& out) = 0;

  /// Rewind to the first row.
  virtual void reset() = 0;

  /// Universe width shared by all rows.
  [[nodiscard]] virtual std::size_t n_taxa() const = 0;

  /// Total row count if cheaply known.
  [[nodiscard]] virtual std::optional<std::size_t> size_hint() const {
    return std::nullopt;
  }
};

/// Adapts an in-memory vector collection.
class SpanVectorSource final : public VectorSource {
 public:
  SpanVectorSource(std::span<const phylo::TreeVector> vectors,
                   std::size_t n_taxa)
      : vectors_(vectors), n_taxa_(n_taxa) {}

  bool next(phylo::TreeVector& out) override {
    if (pos_ >= vectors_.size()) {
      return false;
    }
    out = vectors_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }

  [[nodiscard]] std::size_t n_taxa() const override { return n_taxa_; }

  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return vectors_.size();
  }

 private:
  std::span<const phylo::TreeVector> vectors_;
  std::size_t n_taxa_;
  std::size_t pos_ = 0;
};

/// Streams records from a .p2v corpus. The counted header makes
/// size_hint() EXACT — no scan, unlike text formats — so downstream
/// reserves and pre-sizing never degrade on file input.
class P2vFileSource final : public VectorSource {
 public:
  explicit P2vFileSource(std::string path);

  bool next(phylo::TreeVector& out) override;
  void reset() override;

  [[nodiscard]] std::size_t n_taxa() const override;
  [[nodiscard]] std::optional<std::size_t> size_hint() const override;

  /// Corpus header (taxon labels, if the file carries them).
  [[nodiscard]] const phylo::P2vHeader& header() const;

 private:
  void open();

  std::string path_;
  std::ifstream in_;
  std::unique_ptr<phylo::P2vReader> reader_;
};

/// Adapts a VectorSource into a TreeSource by decoding each row, so every
/// Tree-consuming engine can read vector corpora unchanged. The source's
/// (exact, for .p2v) size_hint passes through. Non-owning: the underlying
/// source must outlive the adapter.
class VectorTreeSource final : public TreeSource {
 public:
  /// `taxa` must have exactly source.n_taxa() taxa.
  VectorTreeSource(VectorSource& source, phylo::TaxonSetPtr taxa);

  bool next(phylo::Tree& out) override;
  void reset() override { source_.reset(); }

  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return source_.size_hint();
  }

 private:
  VectorSource& source_;
  phylo::TaxonSetPtr taxa_;
  phylo::TreeVector row_;
};

}  // namespace bfhrf::core
