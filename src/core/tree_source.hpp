// TreeSource: a resettable forward stream of trees.
//
// The paper's memory argument (Table I) hinges on *dynamically* loading
// tree collections — only one tree resident at a time. TreeSource is that
// abstraction: engines that accept a TreeSource never materialize the
// collection; engines that accept std::span<const Tree> trade memory for
// zero re-parsing. Both paths are benchmarked.
#pragma once

#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>

#include "phylo/newick.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

class TreeSource {
 public:
  virtual ~TreeSource() = default;

  /// Move the next tree into `out`; false at end of stream.
  virtual bool next(phylo::Tree& out) = 0;

  /// Rewind to the first tree (re-opens files; re-iterates spans).
  virtual void reset() = 0;

  /// Total tree count if cheaply known (spans: yes; files: no).
  [[nodiscard]] virtual std::optional<std::size_t> size_hint() const {
    return std::nullopt;
  }
};

/// Adapts an in-memory collection. next() copies (callers that can work
/// over the span directly should; this adapter exists so the streaming
/// engines can be tested against in-memory data).
class SpanTreeSource final : public TreeSource {
 public:
  explicit SpanTreeSource(std::span<const phylo::Tree> trees)
      : trees_(trees) {}

  bool next(phylo::Tree& out) override {
    if (pos_ >= trees_.size()) {
      return false;
    }
    out = trees_[pos_++];
    return true;
  }

  void reset() override { pos_ = 0; }

  [[nodiscard]] std::optional<std::size_t> size_hint() const override {
    return trees_.size();
  }

 private:
  std::span<const phylo::Tree> trees_;
  std::size_t pos_ = 0;
};

/// Streams trees from a Newick file; holds one parsed tree at a time.
class FileTreeSource final : public TreeSource {
 public:
  FileTreeSource(std::string path, phylo::TaxonSetPtr taxa,
                 phylo::NewickParseOptions opts = {});

  bool next(phylo::Tree& out) override;
  void reset() override;

 private:
  void open();

  std::string path_;
  phylo::TaxonSetPtr taxa_;
  phylo::NewickParseOptions opts_;
  std::ifstream in_;
  std::unique_ptr<phylo::NewickReader> reader_;
};

}  // namespace bfhrf::core
