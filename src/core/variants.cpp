#include "core/variants.hpp"

#include <cmath>

#include "util/error.hpp"

namespace bfhrf::core {

std::string SizeFilteredRf::name() const {
  return "size-filtered[" + std::to_string(min_size_) + "," +
         std::to_string(max_size_) + "]";
}

InformationWeightedRf::InformationWeightedRf(std::size_t n_taxa)
    : n_taxa_(n_taxa) {
  if (n_taxa < 4) {
    throw InvalidArgument("information weighting needs >= 4 taxa");
  }
  // log_ddf_[k] = log2((2k-3)!!), the log count of rooted binary trees on k
  // leaves; (-1)!! = 1!! = 1 so entries 0..2 are 0.
  log_ddf_.assign(n_taxa + 1, 0.0);
  for (std::size_t k = 3; k <= n_taxa; ++k) {
    log_ddf_[k] =
        log_ddf_[k - 1] + std::log2(static_cast<double>(2 * k - 3));
  }
}

double InformationWeightedRf::weight(const BipartitionRef& b) const {
  // P(a | n-a split present in a uniform unrooted binary topology)
  //   = (2a-3)!! (2(n-a)-3)!! / (2n-5)!!,  and (2n-5)!! = (2(n-1)-3)!!.
  const std::size_t a = b.ones;
  const std::size_t c = n_taxa_ - a;
  BFHRF_ASSERT(a >= 1 && c >= 1);
  return log_ddf_[n_taxa_ - 1] - log_ddf_[a] - log_ddf_[c];
}

const RfVariant& classic_rf() {
  static const ClassicRf instance;
  return instance;
}

}  // namespace bfhrf::core
