// Pairwise Robinson-Foulds distance (paper §II-C).
//
//   RF(T, T') = |B(T) \ B(T')| + |B(T') \ B(T)|
//
// over canonical non-trivial bipartition sets. Implementations commonly
// divide by 2 or normalize by the maximum; RfNorm captures those
// conventions (§III-C "we also account for an occasional division by 2").
#pragma once

#include <cstddef>
#include <span>

#include "phylo/bipartition.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

enum class RfNorm {
  None,       ///< raw symmetric-difference count
  HalfSum,    ///< divide by 2 (the "matching splits" convention)
  MaxScaled,  ///< divide by the maximum possible RF for the pair
};

/// Raw RF between two precomputed bipartition sets.
[[nodiscard]] inline std::size_t rf_distance(
    const phylo::BipartitionSet& a, const phylo::BipartitionSet& b) {
  return phylo::BipartitionSet::symmetric_difference_size(a, b);
}

/// Raw RF between two trees over the same TaxonSet.
/// Cost: O(n^2/64) dominated by bipartition extraction.
[[nodiscard]] std::size_t rf_distance(const phylo::Tree& a,
                                      const phylo::Tree& b);

/// Maximum possible RF for two trees: |B(a)| + |B(b)| (disjoint sets).
[[nodiscard]] std::size_t max_rf(const phylo::BipartitionSet& a,
                                 const phylo::BipartitionSet& b);

/// Apply a normalization convention to a raw RF value.
[[nodiscard]] double apply_norm(double raw, double max_possible, RfNorm norm);

}  // namespace bfhrf::core
