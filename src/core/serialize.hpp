// Persistence for built BFHRF engines.
//
// A reference collection's frequency hash is expensive to build once r is
// large but tiny on disk (unique splits only); saving it turns the CLI and
// library into a build-once / query-many system — the natural production
// deployment of the paper's two-phase design:
//
//   Bfhrf engine(n); engine.build(reference);
//   save_bfhrf(engine, out);                    // once
//   ...
//   Bfhrf engine = load_bfhrf(in, {.threads = 8});  // per query batch
//
// Two formats share the file-path entry points, distinguished by magic:
//
//  * V1Stream ("BFHv"): header {magic "BFHv", u32 version, u8 store-kind,
//    u8 include-trivial, u64 n_bits, u64 reference_trees, u64 unique,
//    u64 total, f64 total_weight}, then per unique key {u32 count, raw key
//    words}. Keys are written in raw bitmask form for both store kinds; a
//    compressed store re-encodes on load. Compact and store-agnostic, but
//    load REBUILDS the hash (every key re-probed).
//  * Mapped ("BFHMAP", core/index_file.hpp): the built tables persisted
//    verbatim, section-aligned; load_bfhrf_mapped mmaps the file and
//    serves queries directly off the mapping — zero deserialization.
//
// Integrity is checked on load for both (magic, version, counts, totals,
// and for Mapped: section bounds and alignment).
//
// NOTE: if the engine was built under a filter/weight variant, the stored
// keys are the filtered ones and total_weight is the weighted sum; load
// with the SAME variant in the options or query results will be
// inconsistent (this is documented, not detectable, because variants are
// arbitrary code).
#pragma once

#include <iosfwd>

#include "core/bfhrf.hpp"

namespace bfhrf::core {

/// On-disk representation for the file-path save entry point.
enum class IndexFormat {
  V1Stream,  ///< "BFHv" key/count records (compact, rebuild on load)
  Mapped,    ///< "BFHMAP" verbatim tables (mmap on load, zero-copy serve)
};

/// Serialize a built engine to a binary stream (V1Stream only — the mapped
/// format needs a seekable file; use save_bfhrf_file). Throws
/// InvalidArgument if the engine has not been built, Error on stream
/// failure.
void save_bfhrf(const Bfhrf& engine, std::ostream& out);

/// Reconstruct a saved engine from a V1Stream. Runtime options (threads,
/// variant, norm) come from `opts`; the store kind, trivial-split
/// convention, universe width and contents come from the stream. Throws
/// ParseError on a malformed or truncated stream.
[[nodiscard]] Bfhrf load_bfhrf(std::istream& in, BfhrfOptions opts = {});

/// Open a mapped-format index file as a read-only engine: the file is
/// mmapped (or read whole where mmap is unavailable), validated, and
/// queried in place — no per-key deserialization, bit-identical results.
/// The engine's store is immutable; calling build on it throws. Runtime
/// options come from `opts` (shards/compressed_keys are overridden by the
/// file's own layout). Throws ParseError on a malformed file.
[[nodiscard]] Bfhrf load_bfhrf_mapped(const std::string& path,
                                      BfhrfOptions opts = {});

/// File-path conveniences. Saving picks the representation via `format`;
/// loading sniffs the magic, so a caller needs no format flag ("BFHv" →
/// stream rebuild, "BFHMAP" → zero-copy map).
void save_bfhrf_file(const Bfhrf& engine, const std::string& path,
                     IndexFormat format = IndexFormat::V1Stream);
[[nodiscard]] Bfhrf load_bfhrf_file(const std::string& path,
                                    BfhrfOptions opts = {});

}  // namespace bfhrf::core
