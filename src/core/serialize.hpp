// Persistence for built BFHRF engines.
//
// A reference collection's frequency hash is expensive to build once r is
// large but tiny on disk (unique splits only); saving it turns the CLI and
// library into a build-once / query-many system — the natural production
// deployment of the paper's two-phase design:
//
//   Bfhrf engine(n); engine.build(reference);
//   save_bfhrf(engine, out);                    // once
//   ...
//   Bfhrf engine = load_bfhrf(in, {.threads = 8});  // per query batch
//
// Format (little-endian, versioned): header {magic "BFHv", u32 version,
// u8 store-kind, u8 include-trivial, u64 n_bits, u64 reference_trees,
// u64 unique, u64 total, f64 total_weight}, then per unique key
// {u32 count, raw key words}. Keys are written in raw bitmask form for
// both store kinds; a compressed store re-encodes on load. Integrity is
// checked on load (magic, version, counts, totals).
//
// NOTE: if the engine was built under a filter/weight variant, the stored
// keys are the filtered ones and total_weight is the weighted sum; load
// with the SAME variant in the options or query results will be
// inconsistent (this is documented, not detectable, because variants are
// arbitrary code).
#pragma once

#include <iosfwd>

#include "core/bfhrf.hpp"

namespace bfhrf::core {

/// Serialize a built engine to a binary stream. Throws InvalidArgument if
/// the engine has not been built, Error on stream failure.
void save_bfhrf(const Bfhrf& engine, std::ostream& out);

/// Reconstruct a saved engine. Runtime options (threads, variant, norm)
/// come from `opts`; the store kind, trivial-split convention, universe
/// width and contents come from the stream. Throws ParseError on a
/// malformed or truncated stream.
[[nodiscard]] Bfhrf load_bfhrf(std::istream& in, BfhrfOptions opts = {});

/// File-path conveniences.
void save_bfhrf_file(const Bfhrf& engine, const std::string& path);
[[nodiscard]] Bfhrf load_bfhrf_file(const std::string& path,
                                    BfhrfOptions opts = {});

}  // namespace bfhrf::core
