// Distance-matrix output in PHYLIP format — the interchange format
// downstream clustering/visualisation tools (neighbor, R's ape, scipy)
// consume, making the all-vs-all matrix (§VIII) usable outside this
// library.
//
// Layout: first line is the item count; each following line is a name
// (10-character classic convention optionally relaxed) followed by the
// full row of distances.
#pragma once

#include <iosfwd>
#include <span>
#include <string>

#include "core/rf_matrix.hpp"

namespace bfhrf::core {

struct PhylipWriteOptions {
  /// Pad/truncate names to the strict 10-character PHYLIP field. Off by
  /// default (relaxed format, which every modern reader accepts).
  bool strict_names = false;
  int precision = 0;  ///< decimals per cell (RF distances are integral)
};

/// Write `matrix` with one name per row. `names` must match the matrix
/// size; empty names are replaced by "tN".
void write_phylip_matrix(std::ostream& out, const RfMatrix& matrix,
                         std::span<const std::string> names,
                         const PhylipWriteOptions& opts = {});

/// File convenience.
void write_phylip_matrix_file(const std::string& path, const RfMatrix& matrix,
                              std::span<const std::string> names,
                              const PhylipWriteOptions& opts = {});

}  // namespace bfhrf::core
