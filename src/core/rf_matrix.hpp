// Symmetric r×r distance matrix with triangular storage.
//
// This is HashRF's output object; its O(r^2) footprint is exactly the
// memory wall the paper's Table V / Fig 2 exhibit, so memory_bytes() is
// exposed for the benches.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/error.hpp"

namespace bfhrf::core {

class RfMatrix {
 public:
  RfMatrix() = default;

  /// r×r symmetric matrix, zero diagonal, all entries zero-initialized.
  explicit RfMatrix(std::size_t r)
      : r_(r), cells_(r >= 2 ? r * (r - 1) / 2 : 0, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return r_; }

  [[nodiscard]] std::uint32_t at(std::size_t i, std::size_t j) const {
    if (i == j) {
      return 0;
    }
    return cells_[index(i, j)];
  }

  void set(std::size_t i, std::size_t j, std::uint32_t v) {
    BFHRF_ASSERT(i != j);
    cells_[index(i, j)] = v;
  }

  void add(std::size_t i, std::size_t j, std::uint32_t v) {
    BFHRF_ASSERT(i != j);
    cells_[index(i, j)] += v;
  }

  /// Mean of row i over the other r-1 entries — the paper averages the
  /// all-vs-all matrix to get per-tree average RF. `include_self` divides
  /// by r instead (self-distance 0), matching engines where Q == R and the
  /// query tree is also a reference tree.
  [[nodiscard]] double row_mean(std::size_t i, bool include_self) const {
    if (r_ <= 1) {
      return 0.0;
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < r_; ++j) {
      if (j != i) {
        sum += at(i, j);
      }
    }
    return sum / static_cast<double>(include_self ? r_ : r_ - 1);
  }

  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cells_.capacity() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    BFHRF_ASSERT(i < r_ && j < r_ && i != j);
    if (i > j) {
      std::swap(i, j);
    }
    // Row-major upper triangle, row i holds (r-1-i) cells.
    return i * r_ - i * (i + 1) / 2 + (j - i - 1);
  }

  std::size_t r_ = 0;
  std::vector<std::uint32_t> cells_;
};

}  // namespace bfhrf::core
