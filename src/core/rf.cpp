#include "core/rf.hpp"

#include "util/error.hpp"

namespace bfhrf::core {

std::size_t rf_distance(const phylo::Tree& a, const phylo::Tree& b) {
  if (a.taxa() != b.taxa()) {
    throw InvalidArgument("rf_distance: trees must share one TaxonSet");
  }
  const auto ba = phylo::extract_bipartitions(a);
  const auto bb = phylo::extract_bipartitions(b);
  return rf_distance(ba, bb);
}

std::size_t max_rf(const phylo::BipartitionSet& a,
                   const phylo::BipartitionSet& b) {
  return a.size() + b.size();
}

double apply_norm(double raw, double max_possible, RfNorm norm) {
  switch (norm) {
    case RfNorm::None:
      return raw;
    case RfNorm::HalfSum:
      return raw / 2.0;
    case RfNorm::MaxScaled:
      return max_possible > 0 ? raw / max_possible : 0.0;
  }
  return raw;
}

}  // namespace bfhrf::core
