#include "core/all_pairs.hpp"

#include <vector>

#include "core/bit_matrix.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "phylo/bipartition.hpp"
#include "util/error.hpp"

namespace bfhrf::core {
namespace {

const obs::Counter g_ap_trees = obs::counter("core.all_pairs.trees");
const obs::Counter g_ap_pairs = obs::counter("core.all_pairs.pairs");
const obs::Histogram g_ap_seconds = obs::histogram("core.all_pairs.seconds");
const obs::Counter g_engine_legacy =
    obs::counter("bfhrf.matrix.engine.legacy");

/// The pre-bit-matrix engine: upper-triangular fill, parallel over rows,
/// one sorted-arena merge per pair. Kept verbatim as the independent
/// reference implementation the qc oracle cross-checks the bit engines
/// against — it shares no id space, no hash, and no kernel with them.
RfMatrix legacy_rf(std::span<const phylo::BipartitionSet> sets,
                   std::size_t threads) {
  g_engine_legacy.inc();
  const std::size_t r = sets.size();
  // Rows near the top carry more cells, so a small grain keeps the load
  // balanced.
  RfMatrix matrix(r);
  parallel::parallel_for(
      0, r, threads,
      [&](std::size_t i) {
        for (std::size_t j = i + 1; j < r; ++j) {
          matrix.set(i, j,
                     static_cast<std::uint32_t>(
                         phylo::BipartitionSet::symmetric_difference_size(
                             sets[i], sets[j])));
        }
      },
      /*grain=*/1);
  return matrix;
}

}  // namespace

RfMatrix all_pairs_rf(std::span<const phylo::Tree> trees,
                      const AllPairsOptions& opts) {
  if (trees.empty()) {
    throw InvalidArgument("all_pairs_rf: empty collection");
  }
  const obs::TraceSpan span("all_pairs");
  const obs::ScopedTimer timer(g_ap_seconds);
  const auto& taxa = trees.front().taxa();
  for (const auto& t : trees) {
    if (t.taxa() != taxa) {
      throw InvalidArgument("all_pairs_rf: trees must share one TaxonSet");
    }
  }
  const std::size_t r = trees.size();
  const std::size_t threads = parallel::effective_threads(opts.threads);

  // Precompute every tree's sorted bipartition set once (O(n²r/64)) —
  // shared by every engine.
  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts.include_trivial};
  std::vector<phylo::BipartitionSet> sets(r);
  parallel::parallel_for(
      0, r, threads,
      [&](std::size_t i) {
        sets[i] = phylo::extract_bipartitions(trees[i], bip_opts);
      },
      /*grain=*/8);

  RfMatrix matrix = opts.engine == AllPairsEngine::Legacy
                        ? legacy_rf(sets, threads)
                        : bit_matrix_rf(sets, opts);
  g_ap_trees.inc(r);
  g_ap_pairs.inc(static_cast<std::uint64_t>(r) * (r - 1) / 2);
  return matrix;
}

}  // namespace bfhrf::core
