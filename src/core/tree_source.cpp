#include "core/tree_source.hpp"

#include "util/error.hpp"

namespace bfhrf::core {

FileTreeSource::FileTreeSource(std::string path, phylo::TaxonSetPtr taxa,
                               phylo::NewickParseOptions opts)
    : path_(std::move(path)), taxa_(std::move(taxa)), opts_(opts) {
  open();
}

void FileTreeSource::open() {
  in_.close();
  in_.clear();
  in_.open(path_);
  if (!in_) {
    throw ParseError("cannot open '" + path_ + "'");
  }
  reader_ = std::make_unique<phylo::NewickReader>(in_, taxa_, opts_);
}

bool FileTreeSource::next(phylo::Tree& out) {
  auto t = reader_->next();
  if (!t) {
    return false;
  }
  out = std::move(*t);
  return true;
}

void FileTreeSource::reset() { open(); }

}  // namespace bfhrf::core
