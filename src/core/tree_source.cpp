#include "core/tree_source.hpp"

#include "util/error.hpp"

namespace bfhrf::core {

FileTreeSource::FileTreeSource(std::string path, phylo::TaxonSetPtr taxa,
                               phylo::NewickParseOptions opts)
    : path_(std::move(path)), taxa_(std::move(taxa)), opts_(opts) {
  open();
}

void FileTreeSource::open() {
  in_.close();
  in_.clear();
  in_.open(path_);
  if (!in_) {
    throw ParseError("cannot open '" + path_ + "'");
  }
  reader_ = std::make_unique<phylo::NewickReader>(in_, taxa_, opts_);
}

bool FileTreeSource::next(phylo::Tree& out) {
  auto t = reader_->next();
  if (!t) {
    return false;
  }
  out = std::move(*t);
  return true;
}

void FileTreeSource::reset() { open(); }

std::optional<std::size_t> FileTreeSource::size_hint() const {
  if (!cached_hint_) {
    // One buffered pass over a separate descriptor (the streaming reader's
    // position is untouched), counting tree terminators.
    std::ifstream scan(path_, std::ios::binary);
    if (!scan) {
      return std::nullopt;
    }
    std::size_t count = 0;
    char buf[64 * 1024];
    while (scan.read(buf, sizeof buf) || scan.gcount() > 0) {
      const std::streamsize got = scan.gcount();
      for (std::streamsize i = 0; i < got; ++i) {
        count += buf[i] == ';' ? 1 : 0;
      }
      if (got < static_cast<std::streamsize>(sizeof buf)) {
        break;
      }
    }
    cached_hint_ = count;
  }
  return cached_hint_;
}

P2vFileSource::P2vFileSource(std::string path) : path_(std::move(path)) {
  open();
}

void P2vFileSource::open() {
  in_.close();
  in_.clear();
  in_.open(path_, std::ios::binary);
  if (!in_) {
    throw ParseError("cannot open '" + path_ + "'");
  }
  reader_ = std::make_unique<phylo::P2vReader>(in_);
}

bool P2vFileSource::next(phylo::TreeVector& out) { return reader_->next(out); }

void P2vFileSource::reset() { open(); }

std::size_t P2vFileSource::n_taxa() const { return reader_->header().n_taxa; }

std::optional<std::size_t> P2vFileSource::size_hint() const {
  // Exact by construction: the corpus header counts its records.
  return reader_->header().n_trees;
}

const phylo::P2vHeader& P2vFileSource::header() const {
  return reader_->header();
}

VectorTreeSource::VectorTreeSource(VectorSource& source,
                                   phylo::TaxonSetPtr taxa)
    : source_(source), taxa_(std::move(taxa)) {
  if (!taxa_ || taxa_->size() != source_.n_taxa()) {
    throw InvalidArgument(
        "VectorTreeSource: taxon set size does not match the source "
        "universe");
  }
}

bool VectorTreeSource::next(phylo::Tree& out) {
  if (!source_.next(row_)) {
    return false;
  }
  out = phylo::vector_to_tree(row_, taxa_);
  return true;
}

}  // namespace bfhrf::core
