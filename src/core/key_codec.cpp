#include "core/key_codec.hpp"

#include <bit>

#include "util/error.hpp"

namespace bfhrf::core {

void put_varint(std::uint64_t v, std::vector<std::byte>& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t get_varint(ByteSpan bytes, std::size_t& pos) {
  std::uint64_t v = 0;
  unsigned shift = 0;
  while (true) {
    if (pos >= bytes.size()) {
      throw ParseError("truncated varint");
    }
    if (shift >= 64) {
      throw ParseError("over-long varint");
    }
    const auto b = static_cast<std::uint8_t>(bytes[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) {
      return v;
    }
    shift += 7;
  }
}

SparseKeyCodec::SparseKeyCodec(std::size_t n_bits) : n_bits_(n_bits) {
  if (n_bits == 0) {
    throw InvalidArgument("SparseKeyCodec: empty universe");
  }
}

std::size_t SparseKeyCodec::encode(util::ConstWordSpan key,
                                   std::vector<std::byte>& out) const {
  BFHRF_ASSERT(key.size() == util::words_for_bits(n_bits_));
  const std::size_t before = out.size();
  const std::size_t ones = util::popcount_words(key);
  const bool store_zeros = ones > n_bits_ / 2;
  out.push_back(static_cast<std::byte>(store_zeros ? 1 : 0));
  put_varint(store_zeros ? n_bits_ - ones : ones, out);

  std::uint64_t prev = 0;
  bool first = true;
  for (std::size_t w = 0; w < key.size(); ++w) {
    // Visit stored-side bits word at a time.
    std::uint64_t word = store_zeros ? ~key[w] : key[w];
    if (store_zeros && w + 1 == key.size() && (n_bits_ & 63) != 0) {
      word &= (std::uint64_t{1} << (n_bits_ & 63)) - 1;  // mask tail bits
    }
    while (word != 0) {
      const auto bit =
          w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      word &= word - 1;
      if (first) {
        put_varint(bit, out);
        first = false;
      } else {
        put_varint(bit - prev - 1, out);  // gap-1 coding
      }
      prev = bit;
    }
  }
  return out.size() - before;
}

std::size_t SparseKeyCodec::decode(ByteSpan bytes,
                                   util::DynamicBitset& out) const {
  if (out.size() != n_bits_) {
    throw InvalidArgument("SparseKeyCodec::decode: output width mismatch");
  }
  out.clear();
  std::size_t pos = 0;
  if (bytes.empty()) {
    throw ParseError("empty key encoding");
  }
  const auto flag = static_cast<std::uint8_t>(bytes[pos++]);
  if (flag > 1) {
    throw ParseError("bad key flag byte");
  }
  const std::uint64_t k = get_varint(bytes, pos);
  if (k > n_bits_) {
    throw ParseError("key index count exceeds universe");
  }
  std::uint64_t bit = 0;
  for (std::uint64_t i = 0; i < k; ++i) {
    const std::uint64_t delta = get_varint(bytes, pos);
    bit = (i == 0) ? delta : bit + delta + 1;
    if (bit >= n_bits_) {
      throw ParseError("key bit index out of range");
    }
    out.set(static_cast<std::size_t>(bit));
  }
  if (flag == 1) {
    out.flip_all();
  }
  return pos;
}

std::size_t SparseKeyCodec::encoded_size(ByteSpan bytes) const {
  std::size_t pos = 0;
  if (bytes.empty()) {
    throw ParseError("empty key encoding");
  }
  ++pos;  // flag
  const std::uint64_t k = get_varint(bytes, pos);
  if (k > n_bits_) {
    throw ParseError("key index count exceeds universe");
  }
  for (std::uint64_t i = 0; i < k; ++i) {
    (void)get_varint(bytes, pos);
  }
  return pos;
}

std::size_t SparseKeyCodec::max_encoded_size() const noexcept {
  // flag + count varint + (n/2) indices of <= 10 bytes each (worst case).
  return 1 + 10 + (n_bits_ / 2 + 1) * 10;
}

}  // namespace bfhrf::core
