// BFHRF — Bipartition Frequency Hash Robinson-Foulds (paper §III, Alg. 2).
//
// The contribution: computing each query tree's *average* RF against a
// reference collection R directly, replacing q·r tree-vs-tree comparisons
// with r hash insertions + q tree-vs-hash comparisons.
//
// Phase 1 (build): stream R, inserting every canonical bipartition into the
// frequency hash BFH_R and accumulating sumBFHR.
//
// Phase 2 (query): for each query tree T' with kept bipartitions B(T'):
//
//   RF_left  = sumBFHR − Σ_{b'∈B(T')} BFHR[b']      (Σ_T |B(T) \ B(T')|)
//   RF_right = Σ_{b'∈B(T')} (r − BFHR[b'])           (Σ_T |B(T') \ B(T)|)
//   avgRF(T') = (RF_left + RF_right) / r
//
// Under a weighted variant every term carries w(b'); sumBFHR becomes the
// weighted total. Both phases parallelize at tree granularity: the build
// uses per-worker private hashes merged once (no locks on the hot path),
// the query is embarrassingly parallel (read-only hash).
//
// Complexity (Table I): time O(max(n²r, n²q)/64), space O(U·n/64) for U
// unique bipartitions — and U saturates as r grows (§VII-C).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "core/frequency_hash.hpp"
#include "core/frequency_store.hpp"
#include "core/rf.hpp"
#include "core/tree_source.hpp"
#include "core/variants.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

struct BfhrfOptions {
  /// Worker threads for both phases (1 = sequential; 0 = hardware default).
  std::size_t threads = 1;

  /// Trees per streaming batch; bounds resident memory for TreeSource input.
  std::size_t batch_size = 256;

  /// RF variant hooks applied identically at build and query time.
  /// nullptr selects classic RF. The pointee must outlive the engine.
  const RfVariant* variant = nullptr;

  /// Normalization applied to each per-tree average.
  RfNorm norm = RfNorm::None;

  /// Include trivial (leaf) bipartitions. They cancel for fixed taxa, so
  /// the default matches the paper; enable for variable-taxa experiments.
  bool include_trivial = false;

  /// Store keys losslessly compressed (SparseKeyCodec) instead of as raw
  /// bitmasks — the paper's §IX memory-reduction future work. Exactness
  /// and all variants are unaffected; see bench_ablation_hash (A4c).
  bool compressed_keys = false;
};

/// Build/query statistics surfaced to the bench harness.
struct BfhrfStats {
  std::size_t reference_trees = 0;
  std::size_t unique_bipartitions = 0;
  std::uint64_t total_bipartitions = 0;  ///< sumBFHR (unit weights)
  std::size_t hash_memory_bytes = 0;
};

class Bfhrf {
 public:
  friend Bfhrf load_bfhrf(std::istream& in, BfhrfOptions opts);

  /// `n_bits` is the taxon-universe width (TaxonSet::size()); all trees fed
  /// to this engine must be over a taxon set of exactly that width.
  explicit Bfhrf(std::size_t n_bits, BfhrfOptions opts = {});

  // --- Phase 1: build BFH_R -----------------------------------------------

  /// Build from an in-memory collection (parallel, zero-copy).
  void build(std::span<const phylo::Tree> reference);

  /// Build from a stream; at most `threads·batch_size` trees resident.
  void build(TreeSource& reference);

  // --- Phase 2: query ------------------------------------------------------

  /// Average RF of each query tree against R (order preserved).
  [[nodiscard]] std::vector<double> query(
      std::span<const phylo::Tree> queries) const;

  /// Streaming query; results are in stream order.
  [[nodiscard]] std::vector<double> query(TreeSource& queries) const;

  /// Average RF of a single tree against R. Thread-safe after build.
  [[nodiscard]] double query_one(const phylo::Tree& tree) const;

  // --- introspection --------------------------------------------------------

  /// The underlying frequency store (raw or compressed, per options).
  [[nodiscard]] const FrequencyStore& store() const noexcept {
    return *store_;
  }
  [[nodiscard]] BfhrfStats stats() const;
  [[nodiscard]] const BfhrfOptions& options() const noexcept { return opts_; }

 private:
  /// Create an empty store of the configured kind.
  [[nodiscard]] std::unique_ptr<FrequencyStore> make_store() const;

  /// Insert one tree's bipartitions into `target`.
  void add_tree(const phylo::Tree& tree, FrequencyStore& target) const;

  /// The Algorithm-2 inner loop for one query tree.
  [[nodiscard]] double query_bipartitions(
      const phylo::BipartitionSet& bips) const;

  /// Publish post-build store shape (U, resident bytes) as obs gauges.
  void publish_store_metrics() const;

  [[nodiscard]] const RfVariant& variant() const noexcept {
    return opts_.variant != nullptr ? *opts_.variant : classic_rf();
  }

  std::size_t n_bits_;
  BfhrfOptions opts_;
  std::unique_ptr<FrequencyStore> store_;
  std::size_t reference_trees_ = 0;
};

/// One-call convenience mirroring the paper's tool: average RF of every
/// tree in Q against the collection R.
[[nodiscard]] std::vector<double> bfhrf_average_rf(
    std::span<const phylo::Tree> queries,
    std::span<const phylo::Tree> reference, const BfhrfOptions& opts = {});

}  // namespace bfhrf::core
