// BFHRF — Bipartition Frequency Hash Robinson-Foulds (paper §III, Alg. 2).
//
// The contribution: computing each query tree's *average* RF against a
// reference collection R directly, replacing q·r tree-vs-tree comparisons
// with r hash insertions + q tree-vs-hash comparisons.
//
// Phase 1 (build): stream R, inserting every canonical bipartition into the
// frequency hash BFH_R and accumulating sumBFHR.
//
// Phase 2 (query): for each query tree T' with kept bipartitions B(T'):
//
//   RF_left  = sumBFHR − Σ_{b'∈B(T')} BFHR[b']      (Σ_T |B(T) \ B(T')|)
//   RF_right = Σ_{b'∈B(T')} (r − BFHR[b'])           (Σ_T |B(T') \ B(T)|)
//   avgRF(T') = (RF_left + RF_right) / r
//
// Under a weighted variant every term carries w(b'); sumBFHR becomes the
// weighted total. Both phases parallelize at tree granularity: the build
// uses per-worker private hashes merged once (no locks on the hot path),
// the query is embarrassingly parallel (read-only hash).
//
// Complexity (Table I): time O(max(n²r, n²q)/64), space O(U·n/64) for U
// unique bipartitions — and U saturates as r grows (§VII-C).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/frequency_hash.hpp"
#include "core/frequency_store.hpp"
#include "core/rf.hpp"
#include "core/sharded_hash.hpp"
#include "core/tree_source.hpp"
#include "core/variants.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

/// How the streaming (TreeSource) overloads couple parsing to hash work.
enum class StreamingMode {
  /// Producer/consumer pipeline over a bounded queue: the parser thread
  /// feeds trees continuously while workers drain into per-worker private
  /// stores, so parse and hash work overlap instead of alternating.
  Pipelined,
  /// Legacy fill-then-barrier loop: parse threads·batch_size trees on the
  /// calling thread, process them under a parallel_for barrier, repeat.
  /// Workers idle for the entire parse of every batch; kept as the
  /// ablation baseline (bench_ablation_pipeline).
  BarrierBatch,
};

struct BfhrfOptions {
  /// Worker threads for both phases (1 = sequential; 0 = hardware default).
  std::size_t threads = 1;

  /// Trees per streaming batch; bounds resident memory for TreeSource input
  /// under StreamingMode::BarrierBatch (the pipeline bounds residency with
  /// queue_capacity instead).
  std::size_t batch_size = 256;

  /// RF variant hooks applied identically at build and query time.
  /// nullptr selects classic RF. The pointee must outlive the engine.
  const RfVariant* variant = nullptr;

  /// Normalization applied to each per-tree average.
  RfNorm norm = RfNorm::None;

  /// Include trivial (leaf) bipartitions. They cancel for fixed taxa, so
  /// the default matches the paper; enable for variable-taxa experiments.
  bool include_trivial = false;

  /// Store keys losslessly compressed (SparseKeyCodec) instead of as raw
  /// bitmasks — the paper's §IX memory-reduction future work. Exactness
  /// and all variants are unaffected; see bench_ablation_hash (A4c).
  bool compressed_keys = false;

  /// Expected number of unique bipartitions U. Pre-sizes the frequency
  /// store, the per-worker partial stores, and the merge targets, so a
  /// build is one table allocation instead of a rehash cascade. 0 = grow
  /// on demand. A prior build's stats().unique_bipartitions is a good
  /// value (U saturates as r grows, §VII-C).
  std::size_t expected_unique = 0;

  /// Streaming engine for the TreeSource overloads.
  StreamingMode streaming = StreamingMode::Pipelined;

  /// Bounded-queue capacity (trees) for StreamingMode::Pipelined;
  /// 0 = max(4·threads, 16). Resident trees are bounded by this plus one
  /// in flight per worker.
  std::size_t queue_capacity = 0;

  /// Reuse per-worker extraction scratch (phylo::BipartitionExtractor)
  /// instead of allocating fresh traversal buffers and a fresh arena for
  /// every tree. Off reproduces the legacy hot loop (ablation baseline).
  bool reuse_scratch = true;

  /// Route hash operations through the batched, software-prefetched,
  /// devirtualized FrequencyHash paths — add_many on build, frequency_many
  /// on query — when the store is a raw FrequencyHash. Off reproduces the
  /// legacy virtual per-split loops (ablation baseline).
  bool batched_hash = true;

  /// Frequency-store shard count (rounded up to a power of two, capped at
  /// 64). 0 = auto: min(threads, hardware concurrency), so multi-threaded
  /// builds on multi-core hosts shard by default; 1 disables sharding
  /// explicitly. Sharding splits the store into per-worker-owned
  /// FrequencyHash shards routed by the top fingerprint bits
  /// (core/sharded_hash.hpp): parallel builds write disjoint shards with
  /// no locks and NO MERGE PHASE — each unique key is inserted exactly
  /// once instead of once per worker partial plus once per merge round.
  /// Classic-RF results are bit-identical to the single-table engine.
  /// Only the raw-key classic path shards (weighted variants need a
  /// deterministic float accumulation order; compressed stores have no
  /// sharded form) — requesting shards > 1 with either throws
  /// InvalidArgument.
  std::size_t shards = 0;

  /// Pin each sharded-build insert lane to a CPU (Linux only; no-op
  /// elsewhere). With first-touch allocation a shard's bulk pages are
  /// faulted by the lane that fills it; pinning keeps that lane — and so
  /// the shard's pages — on a stable core/node for the NUMA-local case.
  /// Off by default: the scheduler usually does fine, and pinning hurts
  /// when the process shares the machine.
  bool pin_build_threads = false;
};

/// Build/query statistics surfaced to the bench harness.
struct BfhrfStats {
  std::size_t reference_trees = 0;
  std::size_t unique_bipartitions = 0;
  std::uint64_t total_bipartitions = 0;  ///< sumBFHR (unit weights)
  std::size_t hash_memory_bytes = 0;
};

class Bfhrf {
 public:
  friend Bfhrf load_bfhrf(std::istream& in, BfhrfOptions opts);
  friend Bfhrf load_bfhrf_mapped(const std::string& path, BfhrfOptions opts);
  friend class DynamicBfhIndex;

  /// `n_bits` is the taxon-universe width (TaxonSet::size()); all trees fed
  /// to this engine must be over a taxon set of exactly that width.
  explicit Bfhrf(std::size_t n_bits, BfhrfOptions opts = {});

  // --- Phase 1: build BFH_R -----------------------------------------------

  /// Build from an in-memory collection (parallel, zero-copy).
  void build(std::span<const phylo::Tree> reference);

  /// Build from a stream; at most `threads·batch_size` trees resident.
  void build(TreeSource& reference);

  /// Build from a phylo2vec row stream (e.g. a .p2v corpus): bipartitions
  /// are extracted directly from the vector form — no Tree is ever
  /// materialized on the hot path. The source's taxon width must equal the
  /// engine's universe width.
  void build(VectorSource& reference);

  // --- Phase 2: query ------------------------------------------------------

  /// Average RF of each query tree against R (order preserved).
  [[nodiscard]] std::vector<double> query(
      std::span<const phylo::Tree> queries) const;

  /// Streaming query; results are in stream order.
  [[nodiscard]] std::vector<double> query(TreeSource& queries) const;

  /// Streaming query over phylo2vec rows (direct extraction, stream order).
  [[nodiscard]] std::vector<double> query(VectorSource& queries) const;

  /// Average RF of a single tree against R. Thread-safe after build.
  [[nodiscard]] double query_one(const phylo::Tree& tree) const;

  // --- introspection --------------------------------------------------------

  /// The underlying frequency store (raw or compressed, per options).
  [[nodiscard]] const FrequencyStore& store() const noexcept {
    return *store_;
  }
  [[nodiscard]] BfhrfStats stats() const;
  [[nodiscard]] const BfhrfOptions& options() const noexcept { return opts_; }

 private:
  /// Per-worker hot-loop scratch: extraction buffers plus the batched-query
  /// staging vectors. One per worker rank; never shared across threads.
  struct WorkerScratch {
    phylo::BipartitionExtractor extractor;
    phylo::VectorBipartitionExtractor vec_extractor;  ///< phylo2vec rows
    std::vector<std::uint32_t> freqs;        ///< frequency_many output
    std::vector<std::uint64_t> kept_keys;    ///< variant-filtered key arena
    std::vector<double> kept_weights;        ///< weights aligned with keys
  };

  /// Create an empty store of the configured kind, pre-sized for
  /// `expected_unique` distinct keys (0 = minimal).
  [[nodiscard]] std::unique_ptr<FrequencyStore> make_store(
      std::size_t expected_unique = 0) const;

  /// Insert one tree's bipartitions into `target` (legacy allocating path;
  /// the scratch overload is the hot loop).
  void add_tree(const phylo::Tree& tree, FrequencyStore& target) const;
  void add_tree(const phylo::Tree& tree, FrequencyStore& target,
                WorkerScratch& scratch) const;

  /// Shared insertion tail for an extracted bipartition set (batched
  /// add_many when the store supports it; virtual per-split loop
  /// otherwise). Both add_tree and add_vector funnel through this.
  void insert_bipartitions(const phylo::BipartitionSet& bips,
                           FrequencyStore& target,
                           WorkerScratch& scratch) const;

  /// Direct-from-vector analogues of add_tree / route_tree / query_one:
  /// extract through scratch.vec_extractor, then reuse the same insertion,
  /// routing, and Algorithm-2 tails, so vector and Newick ingest are
  /// bit-identical downstream of extraction.
  void add_vector(std::span<const std::uint32_t> row, FrequencyStore& target,
                  WorkerScratch& scratch) const;
  void route_vector(std::span<const std::uint32_t> row,
                    WorkerScratch& scratch,
                    std::vector<std::vector<std::uint64_t>>& buckets) const;
  [[nodiscard]] double query_row(std::span<const std::uint32_t> row,
                                 WorkerScratch& scratch) const;

  /// The Algorithm-2 inner loop for one query tree: legacy virtual
  /// per-split lookup, and the batched/prefetched overload.
  [[nodiscard]] double query_bipartitions(
      const phylo::BipartitionSet& bips) const;
  [[nodiscard]] double query_bipartitions(const phylo::BipartitionSet& bips,
                                          WorkerScratch& scratch) const;

  /// query_one through a caller-owned scratch (per-worker in the engines).
  [[nodiscard]] double query_one(const phylo::Tree& tree,
                                 WorkerScratch& scratch) const;

  /// Sharded build drivers (engaged when the store is sharded): phase A
  /// routes every tree's keys into per-rank per-shard buckets (parallel,
  /// contention-free — ranks own their buckets); phase B assigns each
  /// insert lane a contiguous shard range and feeds it every rank's bucket
  /// for those shards through chunked add_many calls. No partials, no
  /// merge: each key is inserted exactly once.
  void build_span_sharded(std::span<const phylo::Tree> reference);
  void route_tree(const phylo::Tree& tree, WorkerScratch& scratch,
                  std::vector<std::vector<std::uint64_t>>& buckets) const;
  void route_bipartitions(
      const phylo::BipartitionSet& bips,
      std::vector<std::vector<std::uint64_t>>& buckets) const;
  void insert_lane(std::size_t lane, std::size_t lanes,
                   std::vector<std::vector<std::vector<std::uint64_t>>>&
                       buckets);
  void insert_buckets(
      std::vector<std::vector<std::vector<std::uint64_t>>>& buckets);
  void maybe_pin_build_thread(std::size_t lane) const;

  /// Shard count the options resolve to (1 = unsharded single table).
  [[nodiscard]] std::size_t effective_shards() const;

  /// Rebuild the cached query view over the current store (must run after
  /// every store mutation batch — table growth reallocates the memory the
  /// view points into). publish_store_metrics() calls this, and every
  /// mutation path ends with publish_store_metrics().
  void refresh_index_view();

  /// Replace the store with a deserialized or mapped one (load paths).
  void adopt_store(std::unique_ptr<FrequencyStore> store,
                   std::size_t reference_trees);

  /// Streaming phase-1/2 drivers per StreamingMode.
  void build_stream_pipelined(TreeSource& reference);
  void build_stream_barrier(TreeSource& reference);
  [[nodiscard]] std::vector<double> query_stream_pipelined(
      TreeSource& queries) const;
  [[nodiscard]] std::vector<double> query_stream_barrier(
      TreeSource& queries) const;

  /// Vector-row streaming drivers (mirror the TreeSource drivers with
  /// phylo::TreeVector payloads and direct extraction).
  void build_vectors_pipelined(VectorSource& reference);
  void build_vectors_barrier(VectorSource& reference);
  [[nodiscard]] std::vector<double> query_vectors_pipelined(
      VectorSource& queries) const;
  [[nodiscard]] std::vector<double> query_vectors_barrier(
      VectorSource& queries) const;

  /// Pre-size estimate for per-worker partial stores when the caller gave
  /// no expected_unique: scale the stream's tree-count hint by the splits
  /// each binary tree contributes, capped so a wild hint cannot balloon
  /// the tables. Returns opts_.expected_unique unchanged when it is set.
  [[nodiscard]] std::size_t seed_unique_hint(
      std::optional<std::size_t> hint) const;

  /// Fold per-worker partial stores into store_: pairwise tree reduction
  /// on the pool, with merge targets pre-sized from observed uniques.
  void merge_partials(
      std::vector<std::unique_ptr<FrequencyStore>>& partials);

  /// Effective bounded-queue capacity for the pipelined mode.
  [[nodiscard]] std::size_t queue_capacity() const noexcept;

  /// Consumer count for the pipelined mode (0 = inline zero-sync loop;
  /// chosen when threads <= 1 or the host has one hardware thread).
  [[nodiscard]] std::size_t pipeline_workers() const noexcept;

  /// Publish post-build store shape (U, resident bytes) as obs gauges and
  /// refresh the cached query view (every mutation path ends here).
  void publish_store_metrics();

  [[nodiscard]] const RfVariant& variant() const noexcept {
    return opts_.variant != nullptr ? *opts_.variant : classic_rf();
  }

  /// True when queries should run the batched frequency_many path (valid
  /// for every raw-key store: single table, sharded, or mapped).
  [[nodiscard]] bool use_batched_query() const noexcept {
    return opts_.batched_hash && index_view_.valid();
  }

  /// True when builds should insert through FrequencyHash::add_many
  /// (every non-compressed store make_store() hands out qualifies).
  [[nodiscard]] bool use_batched_add() const noexcept {
    return opts_.batched_hash && !opts_.compressed_keys;
  }

  std::size_t n_bits_;
  BfhrfOptions opts_;
  std::unique_ptr<FrequencyStore> store_;
  /// store_ downcast when it is a raw single-table FrequencyHash
  /// (devirtualized batched add path); nullptr otherwise.
  const FrequencyHash* fast_store_ = nullptr;
  /// store_ downcast when it is sharded; nullptr otherwise.
  ShardedFrequencyHash* sharded_store_ = nullptr;
  /// Cached routing view for the batched query path — valid for every
  /// raw-key store shape (single, sharded, mapped); invalid (falls back to
  /// the virtual per-split loop) for compressed stores. Refreshed by
  /// publish_store_metrics() at the end of every mutation path.
  BfhIndexView index_view_;
  std::size_t reference_trees_ = 0;
};

/// DynamicBfhIndex — incremental maintenance of a live BFH_R.
///
/// Wraps a Bfhrf whose reference collection mutates: trees can be added,
/// removed, or replaced after the initial build, and queries stay exact
/// against the current collection (equivalent to rebuilding from scratch —
/// the qc delta-vs-rebuild oracle, src/qc/dynamic.hpp, enforces this
/// bit-for-bit). The index retains each live tree's kept, sorted key set
/// (not the tree itself), so:
///
///  * remove_tree decrements exactly the tree's own kept bipartitions —
///    no re-extraction — via the hashes' tombstoning remove paths;
///  * replace_tree diffs the old and new sorted key sets with one merge
///    walk and touches only the symmetric difference: O(edges-changed)
///    hash operations for a tree perturbed by one SPR/NNI move (an NNI
///    changes at most one internal split, so at most 1 remove + 1 add).
///
/// Weighted variants are supported (kept weights ride along with the
/// keys), but note removal subtracts floating-point weight mass, so
/// total_weight can drift from a fresh rebuild by accumulated rounding;
/// classic RF (unit weights) is exactly integer-valued and drift-free.
///
/// Concurrency matches Bfhrf: mutations are single-writer; queries are
/// safe concurrently with each other but not with a mutation.
class DynamicBfhIndex {
 public:
  /// Per-replacement delta: how many distinct bipartitions each side of
  /// the diff touched. keys_removed + keys_added is the number of hash
  /// mutations performed (== the symmetric difference of the kept sets);
  /// keys_shared splits were left untouched.
  struct DeltaStats {
    std::size_t keys_removed = 0;
    std::size_t keys_added = 0;
    std::size_t keys_shared = 0;
  };

  /// Note: the dynamic index always runs a single-shard store (opts.shards
  /// is overridden to 1) — incremental removal needs the one concrete
  /// FrequencyHash the tombstoning remove paths mutate.
  explicit DynamicBfhIndex(std::size_t n_bits, BfhrfOptions opts = {});

  /// Open a saved index file as a live dynamic index. A raw single-shard
  /// MAPPED file takes the zero-parse fast path: the layout is mapped and
  /// adopted verbatim into the mutable store (memcpy + tombstone recount —
  /// no per-key re-probing); other formats/shapes replay their keys. The
  /// baseline trees carry no per-tree key sets, so they cannot be
  /// individually removed or replaced — only trees added afterwards can.
  /// Runtime options (threads, norm, …) come from `opts`; store kind and
  /// the trivial-split convention come from the file.
  [[nodiscard]] static DynamicBfhIndex from_index_file(
      const std::string& path, BfhrfOptions opts = {});

  /// Insert one tree; returns its id (stable for the index's lifetime).
  std::size_t add_tree(const phylo::Tree& tree);

  /// Insert a batch; returns the ids in order.
  std::vector<std::size_t> add_trees(std::span<const phylo::Tree> trees);

  /// Remove a live tree by id (its kept splits are decremented; splits
  /// reaching zero are tombstoned). Throws InvalidArgument for an unknown
  /// or already-removed id.
  void remove_tree(std::size_t id);

  void remove_trees(std::span<const std::size_t> ids);

  /// Swap the tree behind `id` for `next`, touching only the bipartitions
  /// in the symmetric difference of the two kept sets (O(edges-changed)).
  DeltaStats replace_tree(std::size_t id, const phylo::Tree& next);

  /// Average RF of `tree` against the CURRENT collection.
  [[nodiscard]] double query_one(const phylo::Tree& tree) const {
    return engine_.query_one(tree);
  }
  [[nodiscard]] std::vector<double> query(
      std::span<const phylo::Tree> queries) const {
    return engine_.query(queries);
  }

  /// Force tombstone/arena reclamation now (also runs automatically when
  /// the store's tombstone ratio passes its threshold). Contents and query
  /// results are unchanged.
  void compact();

  [[nodiscard]] std::size_t tree_count() const noexcept { return live_; }
  [[nodiscard]] bool is_live(std::size_t id) const noexcept {
    return id < entries_.size() && entries_[id].live;
  }
  [[nodiscard]] const FrequencyStore& store() const noexcept {
    return engine_.store();
  }
  [[nodiscard]] BfhrfStats stats() const { return engine_.stats(); }
  [[nodiscard]] const BfhrfOptions& options() const noexcept {
    return engine_.options();
  }

 private:
  /// A live tree's contribution: its kept canonical keys in
  /// util::compare_words order (the BipartitionSet finalize order, so
  /// replace_tree can merge-walk two entries), plus aligned weights when a
  /// variant is active (empty = unit weights).
  struct Entry {
    std::vector<std::uint64_t> keys;  ///< sorted arena, words_per each
    std::vector<double> weights;      ///< empty for classic RF
    bool live = false;

    [[nodiscard]] std::size_t size(std::size_t words_per) const noexcept {
      return keys.size() / words_per;
    }
  };

  [[nodiscard]] Entry extract_entry(const phylo::Tree& tree);
  void apply_add(const Entry& e);     ///< insert keys, count the tree in
  void apply_remove(const Entry& e);  ///< decrement keys, count it out
  [[nodiscard]] Entry& live_entry(std::size_t id);

  Bfhrf engine_;
  Bfhrf::WorkerScratch scratch_;  ///< extraction + staging scratch
  std::vector<Entry> entries_;    ///< id -> contribution (dead ids stay)
  std::size_t live_ = 0;
};

/// One-call convenience mirroring the paper's tool: average RF of every
/// tree in Q against the collection R.
[[nodiscard]] std::vector<double> bfhrf_average_rf(
    std::span<const phylo::Tree> queries,
    std::span<const phylo::Tree> reference, const BfhrfOptions& opts = {});

}  // namespace bfhrf::core
