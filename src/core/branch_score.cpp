#include "core/branch_score.hpp"

#include <algorithm>

#include "parallel/thread_pool.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::core {
namespace {

phylo::BipartitionSet lengths_of(const phylo::Tree& tree,
                                 const BranchScoreOptions& opts) {
  const phylo::BipartitionOptions bip_opts{
      .include_trivial = opts.include_trivial, .value = opts.value};
  return phylo::extract_bipartitions(tree, bip_opts);
}

bool tree_has_values(const phylo::Tree& tree, phylo::SplitValue value) {
  for (phylo::NodeId id = 0; id < static_cast<phylo::NodeId>(tree.num_nodes());
       ++id) {
    if (value == phylo::SplitValue::BranchLength ? tree.node(id).has_length
                                                 : tree.node(id).has_support) {
      return true;
    }
  }
  return false;
}

}  // namespace

double branch_score_squared(const phylo::Tree& a, const phylo::Tree& b,
                            const BranchScoreOptions& opts) {
  if (a.taxa() != b.taxa()) {
    throw InvalidArgument("branch_score: trees must share one TaxonSet");
  }
  const auto ba = lengths_of(a, opts);
  const auto bb = lengths_of(b, opts);

  double total = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  const auto sq = [](double x) { return x * x; };
  while (i < ba.size() && j < bb.size()) {
    const int c = util::compare_words(ba[i], bb[j]);
    if (c == 0) {
      total += sq(ba.value(i) - bb.value(j));
      ++i;
      ++j;
    } else if (c < 0) {
      total += sq(ba.value(i));
      ++i;
    } else {
      total += sq(bb.value(j));
      ++j;
    }
  }
  for (; i < ba.size(); ++i) {
    total += sq(ba.value(i));
  }
  for (; j < bb.size(); ++j) {
    total += sq(bb.value(j));
  }
  return total;
}

BranchScoreBfhrf::BranchScoreBfhrf(std::size_t n_bits,
                                   BranchScoreOptions opts)
    : n_bits_(n_bits),
      words_per_(util::words_for_bits(n_bits)),
      opts_(opts),
      slots_(util::kGroupWidth) {
  if (n_bits_ == 0) {
    throw InvalidArgument("BranchScoreBfhrf: empty taxon universe");
  }
  opts_.threads = parallel::effective_threads(opts_.threads);
  dir_.reset(slots_.size());
}

util::GroupDirectory::FindResult BranchScoreBfhrf::find(
    util::ConstWordSpan key, std::uint64_t fp) const noexcept {
  return dir_.find(fp, [&](std::size_t idx) {
    return util::equal_words(key_at(slots_[idx].key_index), key);
  });
}

void BranchScoreBfhrf::insert(util::ConstWordSpan key, double length) {
  if (static_cast<double>(size_ + 1) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    grow();
  }
  const std::uint64_t fp = util::hash_words(key);
  const auto r = find(key, fp);
  Slot& s = slots_[r.index];
  if (!r.found) {
    dir_.mark(r.index, fp);
    s.key_index = static_cast<std::uint32_t>(keys_.size() / words_per_);
    keys_.insert(keys_.end(), key.begin(), key.end());
    ++size_;
  }
  s.count += 1;
  s.sum_len += length;
  sum_len_sq_total_ += length * length;
}

BranchScoreBfhrf::LookupResult BranchScoreBfhrf::lookup(
    util::ConstWordSpan key) const {
  const std::uint64_t fp = util::hash_words(key);
  const Slot& s = slots_[find(key, fp).index];
  return {s.count, s.sum_len};
}

void BranchScoreBfhrf::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  dir_.reset(slots_.size());
  // Fingerprints are not stored; recompute from the retained keys.
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    const std::uint64_t fp = util::hash_words(key_at(s.key_index));
    const auto r = dir_.find_insert(fp);
    dir_.mark(r.index, fp);
    slots_[r.index] = s;
  }
}

void BranchScoreBfhrf::add_tree(const phylo::Tree& tree,
                                phylo::BipartitionExtractor& extractor) {
  if (!tree.taxa() || tree.taxa()->size() != n_bits_) {
    throw InvalidArgument("BranchScoreBfhrf: taxon universe mismatch");
  }
  if (!tree_has_values(tree, opts_.value)) {
    throw InvalidArgument(
        "BranchScoreBfhrf: tree carries none of the requested per-edge "
        "values; the score would be identically zero");
  }
  const phylo::BipartitionOptions bip_opts{
      .include_trivial = opts_.include_trivial, .value = opts_.value};
  const phylo::BipartitionSet& bips = extractor.extract(tree, bip_opts);
  for (std::size_t i = 0; i < bips.size(); ++i) {
    insert(bips[i], bips.value(i));
  }
}

void BranchScoreBfhrf::build(std::span<const phylo::Tree> reference) {
  // The length-stats hash is small; a sequential build keeps it simple and
  // exact (parallel extraction would dominate only for huge r, where the
  // classic Bfhrf path is the bottleneck being studied anyway). One
  // extractor reuses the traversal/arena scratch across all r trees.
  phylo::BipartitionExtractor extractor;
  for (const auto& t : reference) {
    add_tree(t, extractor);
  }
  reference_trees_ += reference.size();
}

double BranchScoreBfhrf::query_one(
    const phylo::Tree& tree, phylo::BipartitionExtractor& extractor) const {
  if (reference_trees_ == 0) {
    throw InvalidArgument("BranchScoreBfhrf::query before build");
  }
  if (!tree.taxa() || tree.taxa()->size() != n_bits_) {
    throw InvalidArgument("BranchScoreBfhrf: taxon universe mismatch");
  }
  const auto r = static_cast<double>(reference_trees_);
  const phylo::BipartitionOptions bip_opts{
      .include_trivial = opts_.include_trivial, .value = opts_.value};
  const phylo::BipartitionSet& bips = extractor.extract(tree, bip_opts);

  // Σ_T BS²(T, T') = S2 + Σ_{b'} ( r·l'² − 2·l'·sumlen(b') ).
  double total = sum_len_sq_total_;
  for (std::size_t i = 0; i < bips.size(); ++i) {
    const double l = bips.value(i);
    const LookupResult hit = lookup(bips[i]);
    total += r * l * l - 2.0 * l * hit.sum_len;
  }
  return total / r;
}

double BranchScoreBfhrf::query_one(const phylo::Tree& tree) const {
  phylo::BipartitionExtractor extractor;
  return query_one(tree, extractor);
}

std::vector<double> BranchScoreBfhrf::query(
    std::span<const phylo::Tree> queries) const {
  const std::size_t threads = opts_.threads;
  std::vector<double> out(queries.size(), 0.0);
  std::vector<phylo::BipartitionExtractor> extractors(
      std::max<std::size_t>(1, threads));
  parallel::parallel_for_ranked(
      0, queries.size(), threads, [&](std::size_t rank, std::size_t i) {
        out[i] = query_one(queries[i], extractors[rank]);
      });
  return out;
}

std::vector<double> sequential_avg_branch_score(
    std::span<const phylo::Tree> queries,
    std::span<const phylo::Tree> reference,
    const BranchScoreOptions& opts) {
  if (reference.empty()) {
    throw InvalidArgument("sequential_avg_branch_score: empty reference");
  }
  std::vector<double> out;
  out.reserve(queries.size());
  for (const auto& q : queries) {
    double sum = 0.0;
    for (const auto& ref : reference) {
      sum += branch_score_squared(q, ref, opts);
    }
    out.push_back(sum / static_cast<double>(reference.size()));
  }
  return out;
}

}  // namespace bfhrf::core
