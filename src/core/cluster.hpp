// Tree clustering on RF matrices — the analysis the paper says the
// all-vs-all matrix exists for ("useful for clustering techniques", §VIII).
//
// Two standard methods over a precomputed RfMatrix:
//  * agglomerative hierarchical clustering (single / complete / average
//    linkage) via the nearest-neighbor-chain algorithm — O(r²) time,
//    O(r) extra space, exact for these reducible linkages;
//  * k-medoids (PAM-style alternating assignment/update) for flat
//    partitions with representative trees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rf_matrix.hpp"
#include "util/rng.hpp"

namespace bfhrf::core {

enum class Linkage { Single, Complete, Average };

/// One agglomerative merge step. Leaves are numbered 0..r-1; internal
/// clusters r..2r-2 in merge order (the scipy convention).
struct Merge {
  std::size_t left;
  std::size_t right;
  double height;  ///< linkage distance at which the pair merged
};

/// Full dendrogram: r-1 merges, heights non-decreasing for reducible
/// linkages (single/complete/average all are).
struct Dendrogram {
  std::size_t num_leaves = 0;
  std::vector<Merge> merges;

  /// Flat clustering with exactly `k` clusters (1 <= k <= num_leaves):
  /// undo the last k-1 merges. Returns a label in [0, k) per leaf.
  [[nodiscard]] std::vector<std::uint32_t> cut(std::size_t k) const;
};

/// Agglomerative clustering of the matrix's items.
[[nodiscard]] Dendrogram hierarchical_cluster(const RfMatrix& matrix,
                                              Linkage linkage);

struct KMedoidsResult {
  std::vector<std::size_t> medoids;        ///< tree index per cluster
  std::vector<std::uint32_t> labels;       ///< cluster id per tree
  double total_cost = 0;                   ///< Σ d(tree, its medoid)
  std::size_t iterations = 0;
};

/// PAM-style k-medoids on a distance matrix. Deterministic given the rng
/// seed (used for the initial medoid draw).
[[nodiscard]] KMedoidsResult k_medoids(const RfMatrix& matrix, std::size_t k,
                                       util::Rng& rng,
                                       std::size_t max_iterations = 50);

}  // namespace bfhrf::core
