// ShardedFrequencyHash — the frequency hash split into S = 2^b private
// FrequencyHash shards, routed by the TOP b bits of the key fingerprint.
//
// Why top bits: the group-probed table consumes the fingerprint from the
// bottom up (low 7 bits = control tag, next 57 = home group;
// util/group_table.hpp), so the top bits are statistically independent of
// everything a shard-local probe looks at. Each shard therefore behaves
// exactly like a standalone FrequencyHash over its key subset — same probe
// lengths, same layouts, same batched pipelines — and the routing function
// is a single shift.
//
// What sharding buys (the build-scaling tentpole, ROADMAP "million-tree
// scale"):
//  * CONTENTION-FREE PARALLEL BUILDS. Key ownership is static, so build
//    workers write disjoint shards with no locks and no shared cache
//    lines. The legacy parallel build gives every worker a private table
//    and then MERGES: each unique key is inserted once per worker partial,
//    re-probed once per pairwise merge round, and once more in the final
//    fold into the engine store — ~(1 + log2 W + 1)x insert work per key.
//    Sharded routing inserts each key exactly once, which is why the
//    sharded build wins even on a single core (bench_ablation_shard, A9).
//  * NUMA FIRST-TOUCH. Shards start tiny; their bulk pages are faulted in
//    by the worker that fills them (Linux first-touch places them on that
//    worker's node). An optional affinity policy pins build workers so the
//    touch happens on a stable socket (BfhrfOptions::pin_build_threads).
//  * A SHARD-SHAPED FILE FORMAT. The mmap index layout (core/index_file)
//    persists each shard's (ctrl, slots, keys) sections verbatim, so a
//    sharded build streams to disk with no re-keying and maps back with no
//    deserialization.
//
// Determinism: classic RF frequencies are order-independent sums, so a
// sharded build reaches bit-identical counts regardless of worker
// interleaving. Weighted variants accumulate floating-point totals whose
// value depends on addition order, so Bfhrf only engages the sharded store
// for the unit-weight classic path (variant == nullptr).
//
// Concurrency model: single writer PER SHARD (distinct shards may be
// written concurrently by distinct threads); the read path is safe for any
// number of concurrent readers once writers are quiesced.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/frequency_hash.hpp"
#include "core/frequency_store.hpp"

namespace bfhrf::core {

/// Shard owning the key with fingerprint `fp` under `shard_bits` (top-bit
/// routing; 0 bits = everything in shard 0).
[[nodiscard]] constexpr std::size_t shard_of(std::uint64_t fp,
                                             std::uint32_t shard_bits) noexcept {
  return shard_bits == 0
             ? 0
             : static_cast<std::size_t>(fp >> (64u - shard_bits));
}

class ShardedFrequencyHash final : public FrequencyStore {
 public:
  /// `shard_count` is rounded up to a power of two (min 1);
  /// `expected_unique` is split evenly across shards as a pre-size hint.
  ShardedFrequencyHash(std::size_t n_bits, std::size_t shard_count,
                       std::size_t expected_unique = 0);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::uint32_t shard_bits() const noexcept {
    return shard_bits_;
  }
  [[nodiscard]] FrequencyHash& shard(std::size_t s) noexcept {
    return *shards_[s];
  }
  [[nodiscard]] const FrequencyHash& shard(std::size_t s) const noexcept {
    return *shards_[s];
  }

  /// Shard owning `key` (hashes it; build hot paths precompute the
  /// fingerprint and call shard_of directly).
  [[nodiscard]] std::size_t shard_index(util::ConstWordSpan key) const;

  // FrequencyStore interface — totals are sums across shards; mutations
  // route to the owning shard.
  [[nodiscard]] std::size_t n_bits() const noexcept override {
    return n_bits_;
  }
  [[nodiscard]] std::size_t words_per_key() const noexcept {
    return shards_.front()->words_per_key();
  }
  [[nodiscard]] std::size_t unique_count() const noexcept override;
  [[nodiscard]] std::uint64_t total_count() const noexcept override;
  [[nodiscard]] double total_weight() const noexcept override;

  void add_weighted(util::ConstWordSpan key, std::uint32_t count,
                    double weight) override;
  void remove_weighted(util::ConstWordSpan key, std::uint32_t count,
                       double weight) override;

  /// Batched insert of `count` contiguous arena keys (mirrors
  /// FrequencyHash::add_many): keys are routed into per-shard staging
  /// buffers (reused across calls, so steady-state batches allocate
  /// nothing) and each shard ingests its slice through the prefetch
  /// pipeline. Single-threaded; parallel builds bypass this and feed
  /// shards directly from per-worker buckets (core/bfhrf).
  void add_many(const std::uint64_t* keys, std::size_t count,
                const double* weights);

  void compact() override;
  [[nodiscard]] std::uint32_t frequency(util::ConstWordSpan key)
      const override;
  void merge_from(const FrequencyStore& other) override;
  void reserve(std::size_t expected_unique) override;
  void for_each_key(const std::function<void(util::ConstWordSpan,
                                             std::uint32_t)>& fn)
      const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  void set_total_weight(double w) override;

  /// Largest shard's unique-key count over the mean — 1.0 is a perfectly
  /// balanced build (obs gauge bfhrf.build.shard.skew).
  [[nodiscard]] double shard_skew() const;

 private:
  std::size_t n_bits_ = 0;
  std::uint32_t shard_bits_ = 0;
  std::vector<std::unique_ptr<FrequencyHash>> shards_;
  // add_many routing scratch, reused across batches.
  std::vector<std::vector<std::uint64_t>> stage_keys_;
  std::vector<std::vector<double>> stage_weights_;
};

/// Read-only routing view over one or more FrequencyHash layouts — THE
/// query-path object of the raw-key engine. One shard: delegates to the
/// shard's full 4-stage prefetch pipeline (bit-identical to the historical
/// single-table fast path). Multiple shards: a fingerprint-routing loop
/// that prefetches each key's home control group in its owning shard a few
/// keys ahead. Backed equally by live tables (Bfhrf after a build) and by
/// mmapped index sections (core/index_file) — the zero-copy cold-serve
/// path.
class BfhIndexView {
 public:
  BfhIndexView() = default;
  explicit BfhIndexView(const FrequencyHash& single)
      : shards_{FrequencyHashView(single)} {}
  explicit BfhIndexView(const ShardedFrequencyHash& sharded);
  BfhIndexView(std::vector<FrequencyHashView> shards,
               std::uint32_t shard_bits)
      : shards_(std::move(shards)), shard_bits_(shard_bits) {}

  [[nodiscard]] bool valid() const noexcept { return !shards_.empty(); }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }

  /// Batched lookup over a contiguous key arena (see
  /// FrequencyHash::frequency_many for the contract).
  void frequency_many(const std::uint64_t* keys, std::size_t count,
                      std::uint32_t* out) const;

 private:
  std::vector<FrequencyHashView> shards_;
  std::uint32_t shard_bits_ = 0;
};

}  // namespace bfhrf::core
