#include "core/compressed_hash.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::core {
namespace {

// Mirrors core.frequency_hash.* for the compressed-key store.
const obs::Counter g_probes = obs::counter("core.compressed_hash.probes");
const obs::Counter g_collisions =
    obs::counter("core.compressed_hash.collisions");
const obs::Counter g_inserts = obs::counter("core.compressed_hash.inserts");

void record_probe(std::size_t steps) noexcept {
  g_probes.inc(steps);
  if (steps > 1) {
    g_collisions.inc(steps - 1);
  }
}

std::size_t table_size_for(std::size_t expected_unique) {
  std::size_t want = 16;
  while (static_cast<double>(expected_unique) >
         0.7 * static_cast<double>(want)) {
    want <<= 1;
  }
  return want;
}

/// Scratch buffer for encodings on the read path; thread-local so
/// concurrent lookups after the build are safe.
std::vector<std::byte>& tl_scratch() {
  thread_local std::vector<std::byte> scratch;
  return scratch;
}

}  // namespace

CompressedFrequencyHash::CompressedFrequencyHash(std::size_t n_bits,
                                                 std::size_t expected_unique)
    : codec_(n_bits), slots_(table_size_for(expected_unique)) {}

std::size_t CompressedFrequencyHash::probe(ByteSpan encoded,
                                           std::uint64_t fp) const noexcept {
  const std::size_t mask = slots_.size() - 1;
  std::size_t idx = static_cast<std::size_t>(fp) & mask;
  std::size_t steps = 1;
  while (true) {
    const Slot& s = slots_[idx];
    if (s.count == 0) {
      record_probe(steps);
      return idx;
    }
    if (s.fingerprint == fp && s.length == encoded.size() &&
        std::memcmp(arena_.data() + s.offset, encoded.data(),
                    encoded.size()) == 0) {
      record_probe(steps);
      return idx;
    }
    idx = (idx + 1) & mask;
    ++steps;
  }
}

void CompressedFrequencyHash::add_weighted(util::ConstWordSpan key,
                                           std::uint32_t count,
                                           double weight) {
  BFHRF_ASSERT(key.size() == util::words_for_bits(codec_.n_bits()));
  BFHRF_ASSERT(count > 0);
  if (static_cast<double>(size_ + 1) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    grow();
  }
  g_inserts.inc();
  auto& scratch = tl_scratch();
  scratch.clear();
  codec_.encode(key, scratch);
  // Fingerprint the raw words (identical to what lookups compute).
  const std::uint64_t fp = util::hash_words(key);
  const std::size_t idx = probe(scratch, fp);
  Slot& s = slots_[idx];
  if (s.count == 0) {
    s.fingerprint = fp;
    s.offset = static_cast<std::uint32_t>(arena_.size());
    s.length = static_cast<std::uint32_t>(scratch.size());
    arena_.insert(arena_.end(), scratch.begin(), scratch.end());
    ++size_;
  }
  s.count += count;
  total_ += count;
  total_weight_ += static_cast<double>(count) * weight;
}

std::uint32_t CompressedFrequencyHash::frequency(
    util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == util::words_for_bits(codec_.n_bits()));
  auto& scratch = tl_scratch();
  scratch.clear();
  codec_.encode(key, scratch);
  const std::uint64_t fp = util::hash_words(key);
  return slots_[probe(scratch, fp)].count;
}

void CompressedFrequencyHash::merge_from(const FrequencyStore& other) {
  const auto* o = dynamic_cast<const CompressedFrequencyHash*>(&other);
  if (o == nullptr || o->n_bits() != n_bits()) {
    throw InvalidArgument(
        "CompressedFrequencyHash::merge_from: incompatible store");
  }
  o->for_each_key([this](util::ConstWordSpan key, std::uint32_t count) {
    add(key, count);
  });
  // add() accumulated unit weights; restore the true weighted mass.
  total_weight_ += o->total_weight_ - static_cast<double>(o->total_);
}

void CompressedFrequencyHash::for_each_key(
    const std::function<void(util::ConstWordSpan, std::uint32_t)>& fn) const {
  util::DynamicBitset decoded(codec_.n_bits());
  for (const Slot& s : slots_) {
    if (s.count == 0) {
      continue;
    }
    (void)codec_.decode(ByteSpan{arena_.data() + s.offset, s.length},
                        decoded);
    fn(decoded.words(), s.count);
  }
}

void CompressedFrequencyHash::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    std::size_t idx = static_cast<std::size_t>(s.fingerprint) & mask;
    while (slots_[idx].count != 0) {
      idx = (idx + 1) & mask;
    }
    slots_[idx] = s;
  }
}

}  // namespace bfhrf::core
