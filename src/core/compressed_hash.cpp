#include "core/compressed_hash.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::core {
namespace {

// Mirrors core.frequency_hash.* for the compressed-key store (probes =
// control groups inspected per lookup; see core/frequency_hash.cpp).
const obs::Counter g_probes = obs::counter("core.compressed_hash.probes");
const obs::Counter g_collisions =
    obs::counter("core.compressed_hash.collisions");
const obs::Counter g_inserts = obs::counter("core.compressed_hash.inserts");

void record_probe(std::size_t steps) noexcept {
  g_probes.inc(steps);
  if (steps > 1) {
    g_collisions.inc(steps - 1);
  }
}

std::size_t table_size_for(std::size_t expected_unique) {
  std::size_t want = util::kGroupWidth;
  while (static_cast<double>(expected_unique) >
         0.7 * static_cast<double>(want)) {
    want <<= 1;
  }
  return want;
}

/// Scratch buffer for encodings on the read path; thread-local so
/// concurrent lookups after the build are safe.
std::vector<std::byte>& tl_scratch() {
  thread_local std::vector<std::byte> scratch;
  return scratch;
}

}  // namespace

CompressedFrequencyHash::CompressedFrequencyHash(std::size_t n_bits,
                                                 std::size_t expected_unique)
    : codec_(n_bits), slots_(table_size_for(expected_unique)) {
  dir_.reset(slots_.size());
}

util::GroupDirectory::FindResult CompressedFrequencyHash::find(
    ByteSpan encoded, std::uint64_t fp) const noexcept {
  const auto r = dir_.find(fp, [&](std::size_t idx) {
    const Slot& s = slots_[idx];
    return s.fingerprint == fp && s.length == encoded.size() &&
           std::memcmp(arena_.data() + s.offset, encoded.data(),
                       encoded.size()) == 0;
  });
  record_probe(r.groups_probed);
  return r;
}

void CompressedFrequencyHash::add_weighted(util::ConstWordSpan key,
                                           std::uint32_t count,
                                           double weight) {
  BFHRF_ASSERT(key.size() == util::words_for_bits(codec_.n_bits()));
  BFHRF_ASSERT(count > 0);
  if (static_cast<double>(size_ + 1) >
      kMaxLoad * static_cast<double>(slots_.size())) {
    grow();
  }
  g_inserts.inc();
  auto& scratch = tl_scratch();
  scratch.clear();
  codec_.encode(key, scratch);
  // Fingerprint the raw words (identical to what lookups compute).
  const std::uint64_t fp = util::hash_words(key);
  const auto r = find(scratch, fp);
  Slot& s = slots_[r.index];
  if (!r.found) {
    dir_.mark(r.index, fp);
    s.fingerprint = fp;
    s.offset = static_cast<std::uint32_t>(arena_.size());
    s.length = static_cast<std::uint32_t>(scratch.size());
    arena_.insert(arena_.end(), scratch.begin(), scratch.end());
    ++size_;
  }
  s.count += count;
  total_ += count;
  total_weight_ += static_cast<double>(count) * weight;
}

std::uint32_t CompressedFrequencyHash::frequency(
    util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == util::words_for_bits(codec_.n_bits()));
  auto& scratch = tl_scratch();
  scratch.clear();
  codec_.encode(key, scratch);
  const std::uint64_t fp = util::hash_words(key);
  return slots_[find(scratch, fp).index].count;
}

void CompressedFrequencyHash::merge_from(const FrequencyStore& other) {
  const auto* o = dynamic_cast<const CompressedFrequencyHash*>(&other);
  if (o == nullptr || o->n_bits() != n_bits()) {
    throw InvalidArgument(
        "CompressedFrequencyHash::merge_from: incompatible store");
  }
  o->for_each_key([this](util::ConstWordSpan key, std::uint32_t count) {
    add(key, count);
  });
  // add() accumulated unit weights; restore the true weighted mass.
  total_weight_ += o->total_weight_ - static_cast<double>(o->total_);
}

void CompressedFrequencyHash::for_each_key(
    const std::function<void(util::ConstWordSpan, std::uint32_t)>& fn) const {
  util::DynamicBitset decoded(codec_.n_bits());
  for (const Slot& s : slots_) {
    if (s.count == 0) {
      continue;
    }
    (void)codec_.decode(ByteSpan{arena_.data() + s.offset, s.length},
                        decoded);
    fn(decoded.words(), s.count);
  }
}

void CompressedFrequencyHash::grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  dir_.reset(slots_.size());
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    const auto r = dir_.find_insert(s.fingerprint);
    dir_.mark(r.index, s.fingerprint);
    slots_[r.index] = s;
  }
}

}  // namespace bfhrf::core
