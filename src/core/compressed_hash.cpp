#include "core/compressed_hash.hpp"

#include <cstring>

#include "obs/metrics.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::core {
namespace {

// Mirrors core.frequency_hash.* for the compressed-key store (probes =
// control groups inspected per lookup; see core/frequency_hash.cpp).
const obs::Counter g_probes = obs::counter("core.compressed_hash.probes");
const obs::Counter g_collisions =
    obs::counter("core.compressed_hash.collisions");
const obs::Counter g_inserts = obs::counter("core.compressed_hash.inserts");
const obs::Counter g_removes = obs::counter("core.compressed_hash.removes");
const obs::Counter g_compactions =
    obs::counter("core.compressed_hash.compactions");

void record_probe(std::size_t steps) noexcept {
  g_probes.inc(steps);
  if (steps > 1) {
    g_collisions.inc(steps - 1);
  }
}

std::size_t table_size_for(std::size_t expected_unique) {
  std::size_t want = util::kGroupWidth;
  while (static_cast<double>(expected_unique) >
         0.7 * static_cast<double>(want)) {
    want <<= 1;
  }
  return want;
}

/// Scratch buffer for encodings on the read path; thread-local so
/// concurrent lookups after the build are safe.
std::vector<std::byte>& tl_scratch() {
  thread_local std::vector<std::byte> scratch;
  return scratch;
}

}  // namespace

CompressedFrequencyHash::CompressedFrequencyHash(std::size_t n_bits,
                                                 std::size_t expected_unique)
    : codec_(n_bits), slots_(table_size_for(expected_unique)) {
  dir_.reset(slots_.size());
}

util::GroupDirectory::FindResult CompressedFrequencyHash::find(
    ByteSpan encoded, std::uint64_t fp) const noexcept {
  const auto r = dir_.find(fp, [&](std::size_t idx) {
    const Slot& s = slots_[idx];
    return s.fingerprint == fp && s.length == encoded.size() &&
           std::memcmp(arena_.data() + s.offset, encoded.data(),
                       encoded.size()) == 0;
  });
  record_probe(r.groups_probed);
  return r;
}

void CompressedFrequencyHash::add_weighted(util::ConstWordSpan key,
                                           std::uint32_t count,
                                           double weight) {
  BFHRF_ASSERT(key.size() == util::words_for_bits(codec_.n_bits()));
  BFHRF_ASSERT(count > 0);
  ensure_capacity(1);
  g_inserts.inc();
  auto& scratch = tl_scratch();
  scratch.clear();
  codec_.encode(key, scratch);
  // Fingerprint the raw words (identical to what lookups compute).
  const std::uint64_t fp = util::hash_words(key);
  const auto r = find(scratch, fp);
  Slot& s = slots_[r.index];
  if (!r.found) {
    dir_.mark(r.index, fp);
    s.fingerprint = fp;
    s.offset = static_cast<std::uint32_t>(arena_.size());
    s.length = static_cast<std::uint32_t>(scratch.size());
    arena_.insert(arena_.end(), scratch.begin(), scratch.end());
    ++size_;
  }
  s.count += count;
  total_ += count;
  total_weight_ += static_cast<double>(count) * weight;
}

void CompressedFrequencyHash::remove_weighted(util::ConstWordSpan key,
                                              std::uint32_t count,
                                              double weight) {
  BFHRF_ASSERT(key.size() == util::words_for_bits(codec_.n_bits()));
  BFHRF_ASSERT(count > 0);
  g_removes.inc();
  auto& scratch = tl_scratch();
  scratch.clear();
  codec_.encode(key, scratch);
  const std::uint64_t fp = util::hash_words(key);
  const auto r = find(scratch, fp);
  if (!r.found) {
    throw InvalidArgument(
        "CompressedFrequencyHash::remove: unknown bipartition");
  }
  Slot& s = slots_[r.index];
  if (count > s.count) {
    throw InvalidArgument(
        "CompressedFrequencyHash::remove: count exceeds stored frequency");
  }
  s.count -= count;
  total_ -= count;
  total_weight_ -= static_cast<double>(count) * weight;
  if (s.count == 0) {
    // Tombstone the control byte; the dead encoding stays in the arena
    // until compact() repacks it.
    dir_.erase(r.index);
    s = Slot{};
    --size_;
  }
  if (!slots_.empty() &&
      static_cast<double>(dir_.tombstone_count()) >
          kMaxTombstoneRatio * static_cast<double>(slots_.size())) {
    compact();
  }
}

void CompressedFrequencyHash::compact() {
  g_compactions.inc();
  // Repack arena + slots in old slot order (deterministic across dispatch
  // levels), dropping tombstones and dead encodings. Slot count is kept.
  std::vector<std::byte> packed;
  packed.reserve(arena_.size());
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size(), Slot{});
  dir_.reset(old.size());
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    Slot moved = s;
    moved.offset = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), arena_.begin() + s.offset,
                  arena_.begin() + s.offset + s.length);
    const auto r = dir_.find_insert(moved.fingerprint);
    dir_.mark(r.index, moved.fingerprint);
    slots_[r.index] = moved;
  }
  arena_ = std::move(packed);
}

std::uint32_t CompressedFrequencyHash::frequency(
    util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == util::words_for_bits(codec_.n_bits()));
  auto& scratch = tl_scratch();
  scratch.clear();
  codec_.encode(key, scratch);
  const std::uint64_t fp = util::hash_words(key);
  return slots_[find(scratch, fp).index].count;
}

void CompressedFrequencyHash::merge_from(const FrequencyStore& other) {
  const auto* o = dynamic_cast<const CompressedFrequencyHash*>(&other);
  if (o == nullptr || o->n_bits() != n_bits()) {
    throw InvalidArgument(
        "CompressedFrequencyHash::merge_from: incompatible store");
  }
  o->for_each_key([this](util::ConstWordSpan key, std::uint32_t count) {
    add(key, count);
  });
  // add() accumulated unit weights; restore the true weighted mass.
  total_weight_ += o->total_weight_ - static_cast<double>(o->total_);
}

void CompressedFrequencyHash::for_each_key(
    const std::function<void(util::ConstWordSpan, std::uint32_t)>& fn) const {
  util::DynamicBitset decoded(codec_.n_bits());
  for (const Slot& s : slots_) {
    if (s.count == 0) {
      continue;
    }
    (void)codec_.decode(ByteSpan{arena_.data() + s.offset, s.length},
                        decoded);
    fn(decoded.words(), s.count);
  }
}

void CompressedFrequencyHash::adopt_layout(std::span<const std::uint8_t> ctrl,
                                           std::span<const Slot> slots,
                                           std::span<const std::byte> arena_bytes,
                                           std::size_t live_keys,
                                           std::uint64_t total_count,
                                           double total_weight) {
  if (ctrl.size() != slots.size() || ctrl.size() < util::kGroupWidth) {
    throw InvalidArgument(
        "CompressedFrequencyHash::adopt_layout: ctrl/slot arrays must be "
        "the same power-of-two length");
  }
  dir_.assign(ctrl);
  slots_.assign(slots.begin(), slots.end());
  arena_.assign(arena_bytes.begin(), arena_bytes.end());
  size_ = live_keys;
  total_ = total_count;
  total_weight_ = total_weight;
}

std::uint32_t CompressedHashView::frequency(util::ConstWordSpan key) const {
  BFHRF_ASSERT(key.size() == util::words_for_bits(codec_.n_bits()));
  auto& scratch = tl_scratch();
  scratch.clear();
  codec_.encode(key, scratch);
  const std::uint64_t fp = util::hash_words(key);
  const auto r = dir_.find(fp, [&](std::size_t idx) {
    const Slot& s = slots_[idx];
    return s.fingerprint == fp && s.length == scratch.size() &&
           std::memcmp(arena_ + s.offset, scratch.data(), scratch.size()) ==
               0;
  });
  record_probe(r.groups_probed);
  return slots_[r.index].count;
}

void CompressedFrequencyHash::ensure_capacity(std::size_t incoming) {
  // Same policy as FrequencyHash::ensure_capacity: occupancy counts
  // tombstones, the target size counts live keys only (the rehash drops
  // tombstones), so a tombstone-heavy table rehashes in place.
  const std::size_t occupancy = size_ + dir_.tombstone_count();
  if (static_cast<double>(occupancy + incoming) <=
      kMaxLoad * static_cast<double>(slots_.size())) {
    return;
  }
  std::size_t want = slots_.size();
  while (static_cast<double>(size_ + incoming) >
         kMaxLoad * static_cast<double>(want)) {
    want <<= 1;
  }
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(want, Slot{});
  dir_.reset(slots_.size());
  for (const Slot& s : old) {
    if (s.count == 0) {
      continue;
    }
    const auto r = dir_.find_insert(s.fingerprint);
    dir_.mark(r.index, s.fingerprint);
    slots_[r.index] = s;
  }
}

}  // namespace bfhrf::core
