#include "core/sequential_rf.hpp"

#include <algorithm>

#include "core/day.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace bfhrf::core {
namespace {

/// Max-possible pairwise RF sum for normalization under MaxScaled.
double pair_max(const phylo::BipartitionSet& a,
                const phylo::BipartitionSet& b) {
  return static_cast<double>(a.size() + b.size());
}

}  // namespace

double weighted_symmetric_difference(const phylo::BipartitionSet& a,
                                     const phylo::BipartitionSet& b,
                                     const RfVariant& variant) {
  BFHRF_ASSERT(a.words_per_bipartition() == b.words_per_bipartition());
  const std::size_t n_bits = a.n_bits();
  const auto weight_of = [&](util::ConstWordSpan w) {
    const BipartitionRef ref{w, n_bits, util::popcount_words(w)};
    return variant.keep(ref) ? variant.weight(ref) : 0.0;
  };

  double total = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const int c = util::compare_words(a[i], b[j]);
    if (c == 0) {
      ++i;
      ++j;
    } else if (c < 0) {
      total += weight_of(a[i++]);
    } else {
      total += weight_of(b[j++]);
    }
  }
  for (; i < a.size(); ++i) {
    total += weight_of(a[i]);
  }
  for (; j < b.size(); ++j) {
    total += weight_of(b[j]);
  }
  return total;
}

namespace {

struct ReferenceSets {
  std::vector<phylo::BipartitionSet> sets;
  std::size_t memory_bytes = 0;
};

ReferenceSets precompute_reference(std::span<const phylo::Tree> reference,
                                   const SequentialRfOptions& opts) {
  ReferenceSets out;
  out.sets.resize(reference.size());
  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts.include_trivial};
  // One extractor for the whole precompute: the sets own their arenas, but
  // the traversal/sort scratch is reused across all r extractions.
  phylo::BipartitionExtractor extractor;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    extractor.extract_into(reference[i], bip_opts, out.sets[i]);
    out.memory_bytes += out.sets[i].memory_bytes();
  }
  return out;
}

/// Average RF of one query tree against precomputed reference sets.
/// `extractor` is the caller's per-worker scratch.
double query_against(const phylo::Tree& query,
                     std::span<const phylo::Tree> reference,
                     const ReferenceSets& ref_sets,
                     const SequentialRfOptions& opts,
                     phylo::BipartitionExtractor& extractor) {
  const auto r = static_cast<double>(ref_sets.sets.size());

  if (opts.engine == PairwiseEngine::Day) {
    if (opts.variant != nullptr) {
      throw InvalidArgument(
          "PairwiseEngine::Day supports classic RF only (no variant)");
    }
    DayTable table(query, opts.include_trivial);
    double sum = 0.0;
    double max_sum = 0.0;
    for (const auto& ref_tree : reference) {
      sum += static_cast<double>(table.rf_against(ref_tree));
      if (opts.norm == RfNorm::MaxScaled) {
        max_sum += static_cast<double>(table.max_rf_against(ref_tree));
      }
    }
    return apply_norm(sum / r, max_sum / r, opts.norm);
  }

  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts.include_trivial};
  const phylo::BipartitionSet& qb = extractor.extract(query, bip_opts);
  double sum = 0.0;
  double max_sum = 0.0;
  if (opts.variant == nullptr) {
    for (const auto& rb : ref_sets.sets) {
      sum += static_cast<double>(
          phylo::BipartitionSet::symmetric_difference_size(qb, rb));
      max_sum += pair_max(qb, rb);
    }
  } else {
    for (const auto& rb : ref_sets.sets) {
      sum += weighted_symmetric_difference(qb, rb, *opts.variant);
      max_sum += pair_max(qb, rb);  // unit-weight cap; see EXPERIMENTS.md
    }
  }
  return apply_norm(sum / r, max_sum / r, opts.norm);
}

}  // namespace

SequentialRfResult sequential_avg_rf(std::span<const phylo::Tree> queries,
                                     std::span<const phylo::Tree> reference,
                                     const SequentialRfOptions& opts) {
  if (reference.empty()) {
    throw InvalidArgument("sequential_avg_rf: empty reference collection");
  }
  const ReferenceSets ref_sets = precompute_reference(reference, opts);
  const std::size_t threads = parallel::effective_threads(opts.threads);

  SequentialRfResult result;
  result.reference_memory_bytes = ref_sets.memory_bytes;
  result.avg_rf.assign(queries.size(), 0.0);
  std::vector<phylo::BipartitionExtractor> extractors(
      std::max<std::size_t>(1, threads));
  parallel::parallel_for_ranked(
      0, queries.size(), threads,
      [&](std::size_t rank, std::size_t i) {
        result.avg_rf[i] = query_against(queries[i], reference, ref_sets,
                                         opts, extractors[rank]);
      },
      /*grain=*/1);
  return result;
}

SequentialRfResult sequential_avg_rf(TreeSource& queries,
                                     std::span<const phylo::Tree> reference,
                                     const SequentialRfOptions& opts) {
  if (reference.empty()) {
    throw InvalidArgument("sequential_avg_rf: empty reference collection");
  }
  const ReferenceSets ref_sets = precompute_reference(reference, opts);
  const std::size_t threads = parallel::effective_threads(opts.threads);

  SequentialRfResult result;
  result.reference_memory_bytes = ref_sets.memory_bytes;
  std::vector<phylo::BipartitionExtractor> extractors(
      std::max<std::size_t>(1, threads));

  std::vector<phylo::Tree> batch;
  const std::size_t batch_cap = std::max<std::size_t>(1, threads) * 64;
  while (true) {
    batch.clear();
    phylo::Tree t;
    while (batch.size() < batch_cap && queries.next(t)) {
      batch.push_back(std::move(t));
    }
    if (batch.empty()) {
      break;
    }
    const std::size_t base = result.avg_rf.size();
    result.avg_rf.resize(base + batch.size());
    parallel::parallel_for_ranked(
        0, batch.size(), threads,
        [&](std::size_t rank, std::size_t i) {
          result.avg_rf[base + i] = query_against(batch[i], reference,
                                                  ref_sets, opts,
                                                  extractors[rank]);
        },
        /*grain=*/1);
  }
  return result;
}

}  // namespace bfhrf::core
