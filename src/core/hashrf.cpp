#include "core/hashrf.hpp"

#include <unordered_map>

#include "obs/metrics.hpp"
#include "phylo/bipartition.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::core {
namespace {

const obs::Counter g_hashrf_trees = obs::counter("core.hashrf.trees");
const obs::Counter g_hashrf_bips = obs::counter("core.hashrf.bipartitions");
const obs::Counter g_hashrf_credit_pairs =
    obs::counter("core.hashrf.credit_pairs");
const obs::Gauge g_hashrf_matrix_bytes =
    obs::gauge("core.hashrf.matrix_bytes");
const obs::Histogram g_hashrf_seconds = obs::histogram("core.hashrf.seconds");

/// One inverted-index entry: the trees containing a (possibly fingerprint-
/// merged) bipartition. Tree ids are appended in increasing order because
/// trees are processed in order, so the pair loop below needs no sort.
struct IndexEntry {
  std::vector<std::uint32_t> tree_ids;
  // Exact mode: offset of the verified full key in the key arena.
  std::uint32_t key_index = 0;
};

}  // namespace

HashRfResult hash_rf(std::span<const phylo::Tree> trees,
                     const HashRfOptions& opts) {
  if (trees.empty()) {
    throw InvalidArgument("hash_rf: empty collection");
  }
  const obs::TraceSpan span("hashrf");
  const obs::ScopedTimer timer(g_hashrf_seconds);
  const auto& taxa = trees.front().taxa();
  for (const auto& t : trees) {
    if (t.taxa() != taxa) {
      throw InvalidArgument("hash_rf: all trees must share one TaxonSet");
    }
  }
  const std::size_t r = trees.size();
  const std::size_t words_per = util::words_for_bits(taxa->size());
  const util::SeededWordHash h1(opts.seed);
  const util::SeededWordHash h2(opts.seed ^ 0xabcdef1234567890ULL);
  const std::uint64_t fp_mask =
      opts.fingerprint_bits >= 64
          ? ~std::uint64_t{0}
          : ((std::uint64_t{1} << opts.fingerprint_bits) - 1);

  // Inverted index. Exact mode chains same-h1 entries and verifies full
  // keys stored in an arena; Compressed mode trusts the masked h2
  // fingerprint (collisions silently merge, as in the original).
  std::unordered_map<std::uint64_t, std::vector<IndexEntry>> index;
  std::vector<std::uint64_t> key_arena;
  std::vector<std::uint32_t> bip_counts(r, 0);

  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts.include_trivial};
  for (std::uint32_t i = 0; i < r; ++i) {
    const auto bips = phylo::extract_bipartitions(trees[i], bip_opts);
    bip_counts[i] = static_cast<std::uint32_t>(bips.size());
    g_hashrf_bips.inc(bips.size());
    bips.for_each([&](util::ConstWordSpan words) {
      const std::uint64_t bucket =
          opts.mode == HashRfOptions::Mode::Compressed ? (h2(words) & fp_mask)
                                                       : h1(words);
      auto& chain = index[bucket];
      if (opts.mode == HashRfOptions::Mode::Compressed) {
        // Fingerprint is the identity; one entry per bucket.
        if (chain.empty()) {
          chain.emplace_back();
        }
        auto& ids = chain.front().tree_ids;
        if (ids.empty() || ids.back() != i) {
          ids.push_back(i);
        }
        return;
      }
      // Exact: resolve h1 collisions by full-key comparison.
      for (auto& entry : chain) {
        const util::ConstWordSpan stored{
            key_arena.data() +
                static_cast<std::size_t>(entry.key_index) * words_per,
            words_per};
        if (util::equal_words(stored, words)) {
          if (entry.tree_ids.back() != i) {
            entry.tree_ids.push_back(i);
          }
          return;
        }
      }
      IndexEntry entry;
      entry.key_index =
          static_cast<std::uint32_t>(key_arena.size() / words_per);
      key_arena.insert(key_arena.end(), words.begin(), words.end());
      entry.tree_ids.push_back(i);
      chain.push_back(std::move(entry));
    });
  }

  // Shared-bipartition credit: every pair on an entry's list shares it.
  // This nested pair loop is the Θ(Σ|list|²) = O(r²) step.
  HashRfResult result;
  result.matrix = RfMatrix(r);
  std::uint64_t credit_pairs = 0;
  for (const auto& [bucket, chain] : index) {
    (void)bucket;
    for (const auto& entry : chain) {
      ++result.unique_bipartitions;
      const auto& ids = entry.tree_ids;
      credit_pairs += ids.size() * (ids.size() - 1) / 2;
      for (std::size_t a = 0; a < ids.size(); ++a) {
        for (std::size_t b = a + 1; b < ids.size(); ++b) {
          result.matrix.add(ids[a], ids[b], 1);  // shared count, for now
        }
      }
      result.index_memory_bytes +=
          sizeof(IndexEntry) + ids.capacity() * sizeof(std::uint32_t);
    }
  }
  g_hashrf_credit_pairs.inc(credit_pairs);
  result.index_memory_bytes += key_arena.capacity() * sizeof(std::uint64_t);

  // Convert shared counts to RF distances and average the rows.
  result.avg_rf.assign(r, 0.0);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = i + 1; j < r; ++j) {
      const std::uint32_t shared = result.matrix.at(i, j);
      const std::uint32_t rf = bip_counts[i] + bip_counts[j] - 2 * shared;
      result.matrix.set(i, j, rf);
      result.avg_rf[i] += rf;
      result.avg_rf[j] += rf;
    }
  }
  for (auto& v : result.avg_rf) {
    v /= static_cast<double>(r);
  }
  result.matrix_memory_bytes = result.matrix.memory_bytes();
  g_hashrf_trees.inc(r);
  g_hashrf_matrix_bytes.set(static_cast<double>(result.matrix_memory_bytes));
  return result;
}

}  // namespace bfhrf::core
