#include "core/bfhrf.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "core/compressed_hash.hpp"
#include "core/index_file.hpp"
#include "obs/metrics.hpp"
#include "parallel/pipeline.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace bfhrf::core {
namespace {

// Engine-phase metrics (docs/OBSERVABILITY.md): phase-1 build wall time and
// tree/batch counts, merge cost, phase-2 query throughput inputs, and the
// post-build store shape (U, resident bytes).
const obs::Counter g_build_trees = obs::counter("bfhrf.build.trees");
const obs::Counter g_build_batches = obs::counter("bfhrf.build.batches");
const obs::Counter g_query_trees = obs::counter("bfhrf.query.trees");
const obs::Counter g_query_batches = obs::counter("bfhrf.query.batches");
const obs::Counter g_query_bips = obs::counter("bfhrf.query.bipartitions");
const obs::Gauge g_unique = obs::gauge("bfhrf.unique_bipartitions");
const obs::Gauge g_resident = obs::gauge("bfhrf.hash.resident_bytes");
// Table-shape gauges for the group-probed FrequencyHash (fast path only):
// load factor, slot capacity, and the probe-length distribution over
// resident keys (mean/max control groups walked per successful lookup).
const obs::Gauge g_load_factor = obs::gauge("bfhrf.hash.load_factor");
const obs::Gauge g_capacity = obs::gauge("bfhrf.hash.capacity_slots");
const obs::Gauge g_mean_probe = obs::gauge("bfhrf.hash.mean_probe_groups");
const obs::Gauge g_max_probe = obs::gauge("bfhrf.hash.max_probe_groups");
const obs::Histogram g_build_seconds = obs::histogram("bfhrf.build.seconds");
const obs::Histogram g_merge_seconds = obs::histogram("bfhrf.merge.seconds");
const obs::Histogram g_query_seconds = obs::histogram("bfhrf.query.seconds");

// Batched-query path (FrequencyHash::frequency_many): one batch per query
// tree, plus the split count resolved through the prefetch pipeline and the
// subset that took the single-word-key fast path (words_per_key == 1, e.g.
// the paper's Avian n=48 case).
const obs::Counter g_prefetch_batches =
    obs::counter("bfhrf.query.prefetch.batches");
const obs::Counter g_prefetch_bips =
    obs::counter("bfhrf.query.prefetch.bipartitions");
const obs::Counter g_prefetch_fast_path =
    obs::counter("bfhrf.query.prefetch.fast_path_keys");

// Incremental-maintenance metrics (DynamicBfhIndex): trees added/removed/
// replaced after the initial build, hash mutations the replacement diffs
// performed vs. avoided, and the store's tombstoned-slot fraction.
const obs::Counter g_delta_tree_adds = obs::counter("bfhrf.delta.tree_adds");
const obs::Counter g_delta_tree_removes =
    obs::counter("bfhrf.delta.tree_removes");
const obs::Counter g_delta_replacements =
    obs::counter("bfhrf.delta.replacements");
const obs::Counter g_delta_keys_added =
    obs::counter("bfhrf.delta.keys_added");
const obs::Counter g_delta_keys_removed =
    obs::counter("bfhrf.delta.keys_removed");
const obs::Counter g_delta_keys_shared =
    obs::counter("bfhrf.delta.keys_shared");
const obs::Gauge g_tombstone_ratio =
    obs::gauge("bfhrf.hash.tombstone_ratio");

// Sharded-build metrics: resolved shard count and post-build balance
// (largest shard / mean, 1.0 = perfect), plus the keys and add_many chunks
// the insert lanes pushed (chunking bounds per-batch table pre-sizing).
const obs::Gauge g_shard_count = obs::gauge("bfhrf.build.shard.count");
const obs::Gauge g_shard_skew = obs::gauge("bfhrf.build.shard.skew");
const obs::Counter g_shard_keys = obs::counter("bfhrf.build.shard.keys");
const obs::Counter g_shard_chunks = obs::counter("bfhrf.build.shard.chunks");

}  // namespace

Bfhrf::Bfhrf(std::size_t n_bits, BfhrfOptions opts)
    : n_bits_(n_bits), opts_(opts) {
  if (n_bits_ == 0) {
    throw InvalidArgument("Bfhrf: empty taxon universe");
  }
  opts_.threads = parallel::effective_threads(opts_.threads);
  if (opts_.batch_size == 0) {
    opts_.batch_size = 1;
  }
  if (opts_.shards > 1 &&
      (opts_.compressed_keys || opts_.variant != nullptr)) {
    throw InvalidArgument(
        "Bfhrf: shards > 1 requires the raw-key classic-RF path "
        "(compressed stores have no sharded form; weighted variants need "
        "a deterministic accumulation order)");
  }
  const std::size_t shards = effective_shards();
  if (shards > 1) {
    auto sharded = std::make_unique<ShardedFrequencyHash>(
        n_bits_, shards, opts_.expected_unique);
    sharded_store_ = sharded.get();
    store_ = std::move(sharded);
  } else {
    store_ = make_store(opts_.expected_unique);
    if (!opts_.compressed_keys) {
      fast_store_ = static_cast<const FrequencyHash*>(store_.get());
    }
  }
  refresh_index_view();
}

std::size_t Bfhrf::effective_shards() const {
  if (opts_.compressed_keys || opts_.variant != nullptr) {
    return 1;
  }
  std::size_t want = opts_.shards;
  if (want == 0) {
    // Auto: one shard per build worker the hardware can actually run, so
    // single-threaded (or single-core) engines keep the single-table
    // layout and its exact historical behavior.
    const auto hw = std::max(1u, std::thread::hardware_concurrency());
    want = std::min(opts_.threads, static_cast<std::size_t>(hw));
  }
  want = std::min<std::size_t>(want, 64);
  return want <= 1 ? 1 : std::bit_ceil(want);
}

std::unique_ptr<FrequencyStore> Bfhrf::make_store(
    std::size_t expected_unique) const {
  if (opts_.compressed_keys) {
    return std::make_unique<CompressedFrequencyHash>(n_bits_,
                                                     expected_unique);
  }
  return std::make_unique<FrequencyHash>(n_bits_, expected_unique);
}

std::size_t Bfhrf::queue_capacity() const noexcept {
  if (opts_.queue_capacity != 0) {
    return opts_.queue_capacity;
  }
  return std::max<std::size_t>(4 * opts_.threads, 16);
}

void Bfhrf::add_tree(const phylo::Tree& tree, FrequencyStore& target) const {
  if (!tree.taxa() || tree.taxa()->size() != n_bits_) {
    throw InvalidArgument("Bfhrf: tree taxon universe width mismatch");
  }
  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts_.include_trivial};
  const auto bips = phylo::extract_bipartitions(tree, bip_opts);
  const RfVariant& v = variant();
  bips.for_each([&](util::ConstWordSpan words) {
    const BipartitionRef ref{words, n_bits_, util::popcount_words(words)};
    if (!v.keep(ref)) {
      return;
    }
    target.add_weighted(words, 1, v.weight(ref));
  });
}

void Bfhrf::add_tree(const phylo::Tree& tree, FrequencyStore& target,
                     WorkerScratch& scratch) const {
  if (!opts_.reuse_scratch && !use_batched_add()) {
    add_tree(tree, target);  // full legacy path (ablation baseline)
    return;
  }
  if (!tree.taxa() || tree.taxa()->size() != n_bits_) {
    throw InvalidArgument("Bfhrf: tree taxon universe width mismatch");
  }
  // Classic RF needs neither sorted arenas nor per-split values, so skip
  // the finalize sort; variants keep sorted order so their floating-point
  // weight sums accumulate in exactly the legacy order.
  const phylo::BipartitionOptions bip_opts{
      .include_trivial = opts_.include_trivial,
      .sorted = opts_.variant != nullptr};
  phylo::BipartitionSet local;
  const phylo::BipartitionSet& bips =
      opts_.reuse_scratch
          ? scratch.extractor.extract(tree, bip_opts)
          : (local = phylo::extract_bipartitions(tree, bip_opts));
  insert_bipartitions(bips, target, scratch);
}

void Bfhrf::insert_bipartitions(const phylo::BipartitionSet& bips,
                                FrequencyStore& target,
                                WorkerScratch& scratch) const {
  if (auto* sharded = dynamic_cast<ShardedFrequencyHash*>(&target);
      use_batched_add() && sharded != nullptr) {
    // Inline sharded build (threads <= 1): route-and-insert through the
    // store's own staging buffers. Sharding is classic-RF only (ctor
    // invariant), so the whole arena goes in at unit weight.
    sharded->add_many(bips.arena_view().data(), bips.size(), nullptr);
    return;
  }
  // make_store() hands out FrequencyHash when keys are uncompressed; an
  // adopted read-only mapped store fails the cast and falls through to
  // the virtual path below, whose add_weighted throws for it.
  if (auto* hash_ptr = dynamic_cast<FrequencyHash*>(&target);
      use_batched_add() && hash_ptr != nullptr) {
    FrequencyHash& hash = *hash_ptr;
    if (opts_.variant == nullptr) {
      // Classic RF keeps every split at unit weight: insert the arena
      // wholesale — no per-split popcount, virtual keep/weight, or
      // virtual add.
      hash.add_many(bips.arena_view().data(), bips.size(), nullptr);
    } else {
      const RfVariant& v = variant();
      scratch.kept_keys.clear();
      scratch.kept_weights.clear();
      bips.for_each([&](util::ConstWordSpan words) {
        const BipartitionRef ref{words, n_bits_,
                                 util::popcount_words(words)};
        if (!v.keep(ref)) {
          return;
        }
        scratch.kept_keys.insert(scratch.kept_keys.end(), words.begin(),
                                 words.end());
        scratch.kept_weights.push_back(v.weight(ref));
      });
      hash.add_many(scratch.kept_keys.data(), scratch.kept_weights.size(),
                    scratch.kept_weights.data());
    }
    return;
  }

  const RfVariant& v = variant();
  bips.for_each([&](util::ConstWordSpan words) {
    const BipartitionRef ref{words, n_bits_, util::popcount_words(words)};
    if (!v.keep(ref)) {
      return;
    }
    target.add_weighted(words, 1, v.weight(ref));
  });
}

void Bfhrf::merge_partials(
    std::vector<std::unique_ptr<FrequencyStore>>& partials) {
  const obs::ScopedTimer merge_timer(g_merge_seconds);
  if (partials.empty()) {
    return;
  }
  // Pre-size the final store for the union before keys start landing: the
  // largest partial is a lower bound on U, the caller's hint may be better.
  std::size_t largest = 0;
  for (const auto& p : partials) {
    largest = std::max(largest, p->unique_count());
  }
  store_->reserve(std::max(opts_.expected_unique,
                           store_->unique_count() + largest));

  // Pairwise tree reduction: each round merges disjoint partial pairs in
  // parallel (log2 k rounds instead of a k-long sequential fold). Counts
  // are integers, so the merged frequencies are identical to the rank-order
  // fold in any order; only weighted totals can differ in the last ulp,
  // exactly as they already do across parallel_for chunk assignments.
  for (std::size_t stride = 1; stride < partials.size(); stride *= 2) {
    std::vector<std::pair<std::size_t, std::size_t>> pairs;
    for (std::size_t i = 0; i + stride < partials.size(); i += 2 * stride) {
      pairs.emplace_back(i, i + stride);
    }
    parallel::parallel_for(
        0, pairs.size(), opts_.threads,
        [&](std::size_t j) {
          const auto [dst, src] = pairs[j];
          partials[dst]->reserve(partials[dst]->unique_count() +
                                 partials[src]->unique_count());
          partials[dst]->merge_from(*partials[src]);
          partials[src].reset();
        },
        /*grain=*/1);
  }
  store_->merge_from(*partials.front());
}

void Bfhrf::build(std::span<const phylo::Tree> reference) {
  const obs::TraceSpan span("bfhrf.build");
  const obs::ScopedTimer timer(g_build_seconds);
  if (opts_.threads <= 1 || reference.size() < 2) {
    WorkerScratch scratch;
    for (const auto& t : reference) {
      add_tree(t, *store_, scratch);
    }
  } else if (sharded_store_ != nullptr) {
    build_span_sharded(reference);
  } else {
    // Per-worker private stores; pairwise-merged (deterministic counts).
    std::vector<std::unique_ptr<FrequencyStore>> partials;
    partials.reserve(opts_.threads);
    for (std::size_t i = 0; i < opts_.threads; ++i) {
      partials.push_back(make_store(opts_.expected_unique));
    }
    std::vector<WorkerScratch> scratch(opts_.threads);
    parallel::parallel_for_ranked(
        0, reference.size(), opts_.threads,
        [&](std::size_t rank, std::size_t i) {
          add_tree(reference[i], *partials[rank], scratch[rank]);
        });
    merge_partials(partials);
  }
  reference_trees_ += reference.size();
  g_build_trees.inc(reference.size());
  publish_store_metrics();
}

void Bfhrf::build_span_sharded(std::span<const phylo::Tree> reference) {
  // Phase A — routing. Each rank owns buckets[rank][shard]: a contiguous
  // key arena of the splits it routed to that shard. Ranks never share a
  // bucket, so the phase is lock-free and allocation stays rank-local
  // (first-touch places a rank's staging pages on its own node).
  const std::size_t ranks = opts_.threads;
  const std::size_t shards = sharded_store_->shard_count();
  std::vector<std::vector<std::vector<std::uint64_t>>> buckets(
      ranks, std::vector<std::vector<std::uint64_t>>(shards));
  std::vector<WorkerScratch> scratch(ranks);
  parallel::parallel_for_ranked(
      0, reference.size(), opts_.threads,
      [&](std::size_t rank, std::size_t i) {
        route_tree(reference[i], scratch[rank], buckets[rank]);
      });
  // Phase B — per-shard insertion, one lane per contiguous shard range.
  insert_buckets(buckets);
}

void Bfhrf::route_tree(
    const phylo::Tree& tree, WorkerScratch& scratch,
    std::vector<std::vector<std::uint64_t>>& buckets) const {
  if (!tree.taxa() || tree.taxa()->size() != n_bits_) {
    throw InvalidArgument("Bfhrf: tree taxon universe width mismatch");
  }
  // Sharding is classic-RF only (every split kept at unit weight), so
  // routing needs neither the variant filter nor sorted arenas.
  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts_.include_trivial};
  phylo::BipartitionSet local;
  const phylo::BipartitionSet& bips =
      opts_.reuse_scratch
          ? scratch.extractor.extract(tree, bip_opts)
          : (local = phylo::extract_bipartitions(tree, bip_opts));
  route_bipartitions(bips, buckets);
}

void Bfhrf::route_bipartitions(
    const phylo::BipartitionSet& bips,
    std::vector<std::vector<std::uint64_t>>& buckets) const {
  const std::size_t wp = util::words_for_bits(n_bits_);
  const std::uint32_t bits = sharded_store_->shard_bits();
  const auto arena = bips.arena_view();
  const std::size_t n = bips.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t* key = arena.data() + k * wp;
    const std::uint64_t fp = util::hash_words({key, wp});
    auto& bucket = buckets[shard_of(fp, bits)];
    bucket.insert(bucket.end(), key, key + wp);
  }
}

void Bfhrf::add_vector(std::span<const std::uint32_t> row,
                       FrequencyStore& target, WorkerScratch& scratch) const {
  if (row.size() + 1 != n_bits_) {
    throw InvalidArgument("Bfhrf: vector row universe width mismatch");
  }
  // Same sortedness rule as add_tree: classic RF skips the finalize sort;
  // variants keep sorted order so weighted sums accumulate in the legacy
  // order. Downstream of extraction both ingest forms share one tail.
  const phylo::BipartitionOptions bip_opts{
      .include_trivial = opts_.include_trivial,
      .sorted = opts_.variant != nullptr};
  insert_bipartitions(scratch.vec_extractor.extract(row, bip_opts), target,
                      scratch);
}

void Bfhrf::route_vector(
    std::span<const std::uint32_t> row, WorkerScratch& scratch,
    std::vector<std::vector<std::uint64_t>>& buckets) const {
  if (row.size() + 1 != n_bits_) {
    throw InvalidArgument("Bfhrf: vector row universe width mismatch");
  }
  // Sharding is classic-RF only, so routing takes the unsorted arena.
  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts_.include_trivial};
  route_bipartitions(scratch.vec_extractor.extract(row, bip_opts), buckets);
}

void Bfhrf::insert_lane(
    std::size_t lane, std::size_t lanes,
    std::vector<std::vector<std::vector<std::uint64_t>>>& buckets) {
  maybe_pin_build_thread(lane);
  const std::size_t shards = sharded_store_->shard_count();
  const std::size_t wp = util::words_for_bits(n_bits_);
  // Chunked add_many: add_many pre-sizes its table from the batch length,
  // so feeding a whole duplicate-heavy bucket at once would reserve for
  // keys that all collapse onto existing slots. 4096 keys amortizes the
  // pipeline ramp while keeping the over-reserve bounded.
  constexpr std::size_t kChunkKeys = 4096;
  const std::size_t begin = lane * shards / lanes;
  const std::size_t end = (lane + 1) * shards / lanes;
  std::uint64_t lane_keys = 0;
  std::uint64_t lane_chunks = 0;
  for (std::size_t s = begin; s < end; ++s) {
    FrequencyHash& shard = sharded_store_->shard(s);
    for (auto& rank_buckets : buckets) {
      std::vector<std::uint64_t>& bucket = rank_buckets[s];
      const std::size_t n = bucket.size() / wp;
      for (std::size_t off = 0; off < n; off += kChunkKeys) {
        const std::size_t take = std::min(kChunkKeys, n - off);
        // The shard's bulk pages fault in here — on the lane that owns the
        // shard (first-touch NUMA placement when lanes are pinned).
        shard.add_many(bucket.data() + off * wp, take, nullptr);
        ++lane_chunks;
      }
      lane_keys += n;
      // Release routing storage as it drains; peak memory is one shard
      // range, not the whole key stream.
      bucket.clear();
      bucket.shrink_to_fit();
    }
  }
  g_shard_keys.inc(lane_keys);
  g_shard_chunks.inc(lane_chunks);
}

void Bfhrf::insert_buckets(
    std::vector<std::vector<std::vector<std::uint64_t>>>& buckets) {
  const std::size_t shards = sharded_store_->shard_count();
  const std::size_t lanes =
      std::max<std::size_t>(1, std::min(opts_.threads, shards));
  if (lanes == 1) {
    insert_lane(0, 1, buckets);
    return;
  }
  std::exception_ptr first_error;
  std::mutex err_mu;
  {
    std::vector<std::jthread> workers;
    workers.reserve(lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      workers.emplace_back([&, lane] {
        const obs::ScopedThreadSink sink_flush;
        try {
          insert_lane(lane, lanes, buckets);
        } catch (...) {
          const std::lock_guard lock(err_mu);
          if (!first_error) {
            first_error = std::current_exception();
          }
        }
      });
    }
    // workers join here; lanes own disjoint shard ranges, so a throwing
    // lane cannot corrupt another lane's shards.
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

void Bfhrf::maybe_pin_build_thread(std::size_t lane) const {
#if defined(__linux__)
  if (!opts_.pin_build_threads) {
    return;
  }
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(lane % hw), &set);
  // Best-effort: under a restricted cpuset the scheduler stays in charge.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)lane;
#endif
}

void Bfhrf::build(TreeSource& reference) {
  const obs::TraceSpan span("bfhrf.build");
  const obs::ScopedTimer timer(g_build_seconds);
  if (opts_.streaming == StreamingMode::Pipelined) {
    build_stream_pipelined(reference);
  } else {
    build_stream_barrier(reference);
  }
}

void Bfhrf::build(VectorSource& reference) {
  const obs::TraceSpan span("bfhrf.build");
  const obs::ScopedTimer timer(g_build_seconds);
  if (reference.n_taxa() != n_bits_) {
    throw InvalidArgument("Bfhrf: vector source universe width mismatch");
  }
  if (opts_.streaming == StreamingMode::Pipelined) {
    build_vectors_pipelined(reference);
  } else {
    build_vectors_barrier(reference);
  }
}

std::size_t Bfhrf::seed_unique_hint(std::optional<std::size_t> hint) const {
  if (opts_.expected_unique != 0 || !hint) {
    return opts_.expected_unique;
  }
  // Each binary tree contributes at most n-3 non-trivial splits (n with
  // trivial ones); most collections share heavily, so this over-estimates
  // — the cap keeps a huge corpus hint from reserving pathological tables.
  const std::size_t per_tree =
      opts_.include_trivial ? n_bits_ : (n_bits_ > 3 ? n_bits_ - 3 : 1);
  constexpr std::size_t kCap = std::size_t{1} << 20;
  if (*hint == 0) {
    return 0;
  }
  if (*hint > kCap / per_tree) {
    return kCap;
  }
  return *hint * per_tree;
}

std::size_t Bfhrf::pipeline_workers() const noexcept {
  // The calling thread parses; `workers` consumers drain the queue. With
  // threads <= 1 — or on a single-hardware-thread host, where parse/hash
  // overlap is physically impossible and the queue would only add
  // synchronization — the pipeline degenerates to an inline zero-sync
  // loop (results are identical either way).
  if (opts_.threads <= 1 || std::thread::hardware_concurrency() <= 1) {
    return 0;
  }
  return opts_.threads;
}

void Bfhrf::build_stream_pipelined(TreeSource& reference) {
  const std::size_t workers = pipeline_workers();
  const std::size_t lanes = std::max<std::size_t>(1, workers);

  if (sharded_store_ != nullptr && opts_.threads > 1) {
    // Sharded streaming build: consumers route keys into per-rank buckets
    // while the producer keeps parsing; then the pipeline's drain barrier
    // turns the same worker threads into insert lanes over disjoint shard
    // ranges. No partials, no merge phase.
    const std::size_t shards = sharded_store_->shard_count();
    std::vector<std::vector<std::vector<std::uint64_t>>> buckets(
        lanes, std::vector<std::vector<std::uint64_t>>(shards));
    std::vector<WorkerScratch> scratch(lanes);
    const std::size_t insert_lanes =
        std::max<std::size_t>(1, std::min(lanes, shards));
    std::size_t seen = 0;
    parallel::pipeline_run<phylo::Tree>(
        workers, queue_capacity(),
        [&](const parallel::PipelineEmit<phylo::Tree>& emit) {
          phylo::Tree t;
          while (reference.next(t)) {
            ++seen;
            if (!emit(std::move(t))) {
              break;  // aborted; the failure rethrows after join
            }
          }
        },
        [&](std::size_t rank, phylo::Tree& t) {
          route_tree(t, scratch[rank], buckets[rank]);
        },
        [&](std::size_t lane) {
          if (lane < insert_lanes) {
            insert_lane(lane, insert_lanes, buckets);
          }
        });
    reference_trees_ += seen;
    g_build_trees.inc(seen);
    publish_store_metrics();
    return;
  }

  std::vector<std::unique_ptr<FrequencyStore>> partials;
  std::vector<WorkerScratch> scratch(lanes);
  if (workers > 0) {
    // Pre-size partials from the stream's tree-count hint (exact for .p2v
    // corpora, a semicolon-scan estimate for Newick files) when the caller
    // gave no expected_unique of their own. Each lane drains ~1/lanes of
    // the stream, so the hint is split before estimating.
    std::optional<std::size_t> hint = reference.size_hint();
    if (hint) {
      hint = *hint / lanes + 1;
    }
    const std::size_t pre = seed_unique_hint(hint);
    partials.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      partials.push_back(make_store(pre));
    }
  }

  std::size_t seen = 0;
  parallel::pipeline_run<phylo::Tree>(
      workers, queue_capacity(),
      [&](const parallel::PipelineEmit<phylo::Tree>& emit) {
        phylo::Tree t;
        while (reference.next(t)) {
          ++seen;
          if (!emit(std::move(t))) {
            break;  // pipeline aborted; the failure rethrows after join
          }
        }
      },
      [&](std::size_t rank, phylo::Tree& t) {
        FrequencyStore& target = workers > 0 ? *partials[rank] : *store_;
        add_tree(t, target, scratch[rank]);
      });

  if (workers > 0) {
    merge_partials(partials);
  }
  reference_trees_ += seen;
  g_build_trees.inc(seen);
  publish_store_metrics();
}

void Bfhrf::build_stream_barrier(TreeSource& reference) {
  std::vector<std::unique_ptr<FrequencyStore>> partials;
  partials.reserve(opts_.threads);
  for (std::size_t i = 0; i < opts_.threads; ++i) {
    partials.push_back(make_store());
  }
  std::vector<phylo::Tree> batch;
  batch.reserve(opts_.batch_size * opts_.threads);
  std::size_t seen = 0;
  while (true) {
    batch.clear();
    phylo::Tree t;
    while (batch.size() < opts_.batch_size * opts_.threads &&
           reference.next(t)) {
      batch.push_back(std::move(t));
    }
    if (batch.empty()) {
      break;
    }
    seen += batch.size();
    g_build_batches.inc();
    g_build_trees.inc(batch.size());
    parallel::parallel_for_ranked(
        0, batch.size(), opts_.threads,
        [&](std::size_t rank, std::size_t i) {
          add_tree(batch[i], *partials[rank]);
        });
  }
  {
    const obs::ScopedTimer merge_timer(g_merge_seconds);
    for (const auto& p : partials) {
      store_->merge_from(*p);
    }
  }
  reference_trees_ += seen;
  publish_store_metrics();
}

void Bfhrf::build_vectors_pipelined(VectorSource& reference) {
  const std::size_t workers = pipeline_workers();
  const std::size_t lanes = std::max<std::size_t>(1, workers);

  if (sharded_store_ != nullptr && opts_.threads > 1) {
    // Sharded streaming build over vector rows: identical drain structure
    // to the Tree driver — only the payload type and extractor differ.
    const std::size_t shards = sharded_store_->shard_count();
    std::vector<std::vector<std::vector<std::uint64_t>>> buckets(
        lanes, std::vector<std::vector<std::uint64_t>>(shards));
    std::vector<WorkerScratch> scratch(lanes);
    const std::size_t insert_lanes =
        std::max<std::size_t>(1, std::min(lanes, shards));
    std::size_t seen = 0;
    parallel::pipeline_run<phylo::TreeVector>(
        workers, queue_capacity(),
        [&](const parallel::PipelineEmit<phylo::TreeVector>& emit) {
          phylo::TreeVector row;
          while (reference.next(row)) {
            ++seen;
            if (!emit(std::move(row))) {
              break;  // aborted; the failure rethrows after join
            }
          }
        },
        [&](std::size_t rank, phylo::TreeVector& row) {
          route_vector(row, scratch[rank], buckets[rank]);
        },
        [&](std::size_t lane) {
          if (lane < insert_lanes) {
            insert_lane(lane, insert_lanes, buckets);
          }
        });
    reference_trees_ += seen;
    g_build_trees.inc(seen);
    publish_store_metrics();
    return;
  }

  std::vector<std::unique_ptr<FrequencyStore>> partials;
  std::vector<WorkerScratch> scratch(lanes);
  if (workers > 0) {
    // The .p2v header makes this hint exact, so partials start at their
    // final shape on corpus input (split per lane, as in the Tree driver).
    std::optional<std::size_t> hint = reference.size_hint();
    if (hint) {
      hint = *hint / lanes + 1;
    }
    const std::size_t pre = seed_unique_hint(hint);
    partials.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
      partials.push_back(make_store(pre));
    }
  }

  std::size_t seen = 0;
  parallel::pipeline_run<phylo::TreeVector>(
      workers, queue_capacity(),
      [&](const parallel::PipelineEmit<phylo::TreeVector>& emit) {
        phylo::TreeVector row;
        while (reference.next(row)) {
          ++seen;
          if (!emit(std::move(row))) {
            break;  // pipeline aborted; the failure rethrows after join
          }
        }
      },
      [&](std::size_t rank, phylo::TreeVector& row) {
        FrequencyStore& target = workers > 0 ? *partials[rank] : *store_;
        add_vector(row, target, scratch[rank]);
      });

  if (workers > 0) {
    merge_partials(partials);
  }
  reference_trees_ += seen;
  g_build_trees.inc(seen);
  publish_store_metrics();
}

void Bfhrf::build_vectors_barrier(VectorSource& reference) {
  std::vector<std::unique_ptr<FrequencyStore>> partials;
  partials.reserve(opts_.threads);
  for (std::size_t i = 0; i < opts_.threads; ++i) {
    partials.push_back(make_store());
  }
  std::vector<WorkerScratch> scratch(std::max<std::size_t>(1, opts_.threads));
  std::vector<phylo::TreeVector> batch;
  batch.reserve(opts_.batch_size * opts_.threads);
  std::size_t seen = 0;
  while (true) {
    batch.clear();
    phylo::TreeVector row;
    while (batch.size() < opts_.batch_size * opts_.threads &&
           reference.next(row)) {
      batch.push_back(std::move(row));
    }
    if (batch.empty()) {
      break;
    }
    seen += batch.size();
    g_build_batches.inc();
    g_build_trees.inc(batch.size());
    parallel::parallel_for_ranked(
        0, batch.size(), opts_.threads,
        [&](std::size_t rank, std::size_t i) {
          add_vector(batch[i], *partials[rank], scratch[rank]);
        });
  }
  {
    const obs::ScopedTimer merge_timer(g_merge_seconds);
    for (const auto& p : partials) {
      store_->merge_from(*p);
    }
  }
  reference_trees_ += seen;
  publish_store_metrics();
}

double Bfhrf::query_bipartitions(const phylo::BipartitionSet& bips) const {
  if (reference_trees_ == 0) {
    throw InvalidArgument("Bfhrf::query before build");
  }
  const auto r = static_cast<double>(reference_trees_);
  const RfVariant& v = variant();

  // Algorithm 2's two accumulators, generalized to weights.
  double rf_left = store_->total_weight();  // sumBFHR
  double rf_right = 0.0;
  double query_weight_sum = 0.0;            // Σ w(b') for MaxScaled

  std::uint64_t kept = 0;
  bips.for_each([&](util::ConstWordSpan words) {
    const BipartitionRef ref{words, n_bits_, util::popcount_words(words)};
    if (!v.keep(ref)) {
      return;
    }
    const double w = v.weight(ref);
    const double freq = static_cast<double>(store_->frequency(words));
    rf_left -= w * freq;
    rf_right += w * (r - freq);
    query_weight_sum += w;
    ++kept;
  });
  g_query_bips.inc(kept);

  const double avg = (rf_left + rf_right) / r;
  const double max_avg = (store_->total_weight() / r) + query_weight_sum;
  return apply_norm(avg, max_avg, opts_.norm);
}

double Bfhrf::query_bipartitions(const phylo::BipartitionSet& bips,
                                 WorkerScratch& scratch) const {
  if (!use_batched_query()) {
    return query_bipartitions(bips);
  }
  if (reference_trees_ == 0) {
    throw InvalidArgument("Bfhrf::query before build");
  }
  const auto r = static_cast<double>(reference_trees_);
  const BfhIndexView& view = index_view_;
  const std::size_t wp = util::words_for_bits(n_bits_);

  double rf_left = store_->total_weight();  // sumBFHR
  double rf_right = 0.0;
  double query_weight_sum = 0.0;
  std::size_t kept = 0;

  if (opts_.variant == nullptr) {
    // Classic RF: every split kept with unit weight — resolve frequencies
    // straight off the sorted arena; all terms are integer-valued, so the
    // rearranged accumulation is bit-identical to the per-split loop.
    kept = bips.size();
    scratch.freqs.resize(kept);
    view.frequency_many(bips.arena_view().data(), kept,
                        scratch.freqs.data());
    double sum_freq = 0.0;
    for (std::size_t i = 0; i < kept; ++i) {
      sum_freq += static_cast<double>(scratch.freqs[i]);
    }
    rf_left -= sum_freq;
    rf_right = static_cast<double>(kept) * r - sum_freq;
    query_weight_sum = static_cast<double>(kept);
  } else {
    // Variant path: gather kept splits (and weights) into the staging
    // arena, then batch-resolve. Same per-split accumulation order as the
    // legacy loop.
    const RfVariant& v = variant();
    scratch.kept_keys.clear();
    scratch.kept_weights.clear();
    bips.for_each([&](util::ConstWordSpan words) {
      const BipartitionRef ref{words, n_bits_, util::popcount_words(words)};
      if (!v.keep(ref)) {
        return;
      }
      scratch.kept_keys.insert(scratch.kept_keys.end(), words.begin(),
                               words.end());
      scratch.kept_weights.push_back(v.weight(ref));
    });
    kept = scratch.kept_weights.size();
    scratch.freqs.resize(kept);
    view.frequency_many(scratch.kept_keys.data(), kept,
                        scratch.freqs.data());
    for (std::size_t i = 0; i < kept; ++i) {
      const double w = scratch.kept_weights[i];
      const double freq = static_cast<double>(scratch.freqs[i]);
      rf_left -= w * freq;
      rf_right += w * (r - freq);
      query_weight_sum += w;
    }
  }

  g_query_bips.inc(kept);
  g_prefetch_batches.inc();
  g_prefetch_bips.inc(kept);
  if (wp == 1) {
    g_prefetch_fast_path.inc(kept);
  }

  const double avg = (rf_left + rf_right) / r;
  const double max_avg = (store_->total_weight() / r) + query_weight_sum;
  return apply_norm(avg, max_avg, opts_.norm);
}

double Bfhrf::query_one(const phylo::Tree& tree,
                        WorkerScratch& scratch) const {
  if (!tree.taxa() || tree.taxa()->size() != n_bits_) {
    throw InvalidArgument("Bfhrf: tree taxon universe width mismatch");
  }
  const phylo::BipartitionOptions bip_opts{
      .include_trivial = opts_.include_trivial,
      .sorted = opts_.variant != nullptr};
  if (opts_.reuse_scratch) {
    return query_bipartitions(scratch.extractor.extract(tree, bip_opts),
                              scratch);
  }
  return query_bipartitions(phylo::extract_bipartitions(tree, bip_opts),
                            scratch);
}

double Bfhrf::query_one(const phylo::Tree& tree) const {
  WorkerScratch scratch;
  return query_one(tree, scratch);
}

double Bfhrf::query_row(std::span<const std::uint32_t> row,
                        WorkerScratch& scratch) const {
  if (row.size() + 1 != n_bits_) {
    throw InvalidArgument("Bfhrf: vector row universe width mismatch");
  }
  const phylo::BipartitionOptions bip_opts{
      .include_trivial = opts_.include_trivial,
      .sorted = opts_.variant != nullptr};
  return query_bipartitions(scratch.vec_extractor.extract(row, bip_opts),
                            scratch);
}

std::vector<double> Bfhrf::query(
    std::span<const phylo::Tree> queries) const {
  const obs::TraceSpan span("bfhrf.query");
  const obs::ScopedTimer timer(g_query_seconds);
  std::vector<double> out(queries.size(), 0.0);
  std::vector<WorkerScratch> scratch(std::max<std::size_t>(1, opts_.threads));
  parallel::parallel_for_ranked(
      0, queries.size(), opts_.threads,
      [&](std::size_t rank, std::size_t i) {
        out[i] = query_one(queries[i], scratch[rank]);
      });
  g_query_trees.inc(queries.size());
  return out;
}

std::vector<double> Bfhrf::query(TreeSource& queries) const {
  const obs::TraceSpan span("bfhrf.query");
  const obs::ScopedTimer timer(g_query_seconds);
  std::vector<double> out = opts_.streaming == StreamingMode::Pipelined
                                ? query_stream_pipelined(queries)
                                : query_stream_barrier(queries);
  g_query_trees.inc(out.size());
  return out;
}

std::vector<double> Bfhrf::query(VectorSource& queries) const {
  const obs::TraceSpan span("bfhrf.query");
  const obs::ScopedTimer timer(g_query_seconds);
  if (queries.n_taxa() != n_bits_) {
    throw InvalidArgument("Bfhrf: vector source universe width mismatch");
  }
  std::vector<double> out = opts_.streaming == StreamingMode::Pipelined
                                ? query_vectors_pipelined(queries)
                                : query_vectors_barrier(queries);
  g_query_trees.inc(out.size());
  return out;
}

std::vector<double> Bfhrf::query_stream_pipelined(TreeSource& queries) const {
  // Order-preserving pipeline: the producer tags each parsed tree with its
  // stream index; workers drop (index, value) pairs into per-lane buffers
  // that are scattered into the result vector afterwards, so no lock or
  // resize happens on the hot path.
  struct IndexedTree {
    phylo::Tree tree;
    std::size_t index = 0;
  };
  const std::size_t workers = pipeline_workers();
  const std::size_t lanes = std::max<std::size_t>(1, workers);

  std::vector<WorkerScratch> scratch(lanes);
  std::vector<std::vector<std::pair<std::size_t, double>>> lane_results(
      lanes);
  const std::optional<std::size_t> hint = queries.size_hint();
  if (hint) {
    for (auto& lane : lane_results) {
      lane.reserve(*hint / lanes + 1);
    }
  }

  std::size_t seen = 0;
  parallel::pipeline_run<IndexedTree>(
      workers, queue_capacity(),
      [&](const parallel::PipelineEmit<IndexedTree>& emit) {
        phylo::Tree t;
        while (queries.next(t)) {
          IndexedTree item{std::move(t), seen};
          ++seen;
          if (!emit(std::move(item))) {
            break;
          }
        }
      },
      [&](std::size_t rank, IndexedTree& item) {
        lane_results[rank].emplace_back(
            item.index, query_one(item.tree, scratch[rank]));
      });

  std::vector<double> out(seen, 0.0);
  for (const auto& lane : lane_results) {
    for (const auto& [index, value] : lane) {
      out[index] = value;
    }
  }
  return out;
}

std::vector<double> Bfhrf::query_stream_barrier(TreeSource& queries) const {
  std::vector<double> out;
  if (const auto hint = queries.size_hint()) {
    out.reserve(*hint);
  }
  std::vector<phylo::Tree> batch;
  batch.reserve(opts_.batch_size * opts_.threads);
  while (true) {
    batch.clear();
    phylo::Tree t;
    while (batch.size() < opts_.batch_size * opts_.threads &&
           queries.next(t)) {
      batch.push_back(std::move(t));
    }
    if (batch.empty()) {
      break;
    }
    g_query_batches.inc();
    const std::size_t base = out.size();
    out.resize(base + batch.size());
    parallel::parallel_for(
        0, batch.size(), opts_.threads,
        [&](std::size_t i) { out[base + i] = query_one(batch[i]); });
  }
  return out;
}

std::vector<double> Bfhrf::query_vectors_pipelined(
    VectorSource& queries) const {
  // Same order-preserving scheme as the Tree driver: index-tagged rows,
  // per-lane (index, value) buffers, one scatter at the end.
  struct IndexedRow {
    phylo::TreeVector row;
    std::size_t index = 0;
  };
  const std::size_t workers = pipeline_workers();
  const std::size_t lanes = std::max<std::size_t>(1, workers);

  std::vector<WorkerScratch> scratch(lanes);
  std::vector<std::vector<std::pair<std::size_t, double>>> lane_results(
      lanes);
  const std::optional<std::size_t> hint = queries.size_hint();
  if (hint) {
    for (auto& lane : lane_results) {
      lane.reserve(*hint / lanes + 1);
    }
  }

  std::size_t seen = 0;
  parallel::pipeline_run<IndexedRow>(
      workers, queue_capacity(),
      [&](const parallel::PipelineEmit<IndexedRow>& emit) {
        phylo::TreeVector row;
        while (queries.next(row)) {
          IndexedRow item{std::move(row), seen};
          ++seen;
          if (!emit(std::move(item))) {
            break;
          }
        }
      },
      [&](std::size_t rank, IndexedRow& item) {
        lane_results[rank].emplace_back(
            item.index, query_row(item.row, scratch[rank]));
      });

  std::vector<double> out(seen, 0.0);
  for (const auto& lane : lane_results) {
    for (const auto& [index, value] : lane) {
      out[index] = value;
    }
  }
  return out;
}

std::vector<double> Bfhrf::query_vectors_barrier(VectorSource& queries) const {
  std::vector<double> out;
  if (const auto hint = queries.size_hint()) {
    out.reserve(*hint);
  }
  std::vector<WorkerScratch> scratch(std::max<std::size_t>(1, opts_.threads));
  std::vector<phylo::TreeVector> batch;
  batch.reserve(opts_.batch_size * opts_.threads);
  while (true) {
    batch.clear();
    phylo::TreeVector row;
    while (batch.size() < opts_.batch_size * opts_.threads &&
           queries.next(row)) {
      batch.push_back(std::move(row));
    }
    if (batch.empty()) {
      break;
    }
    g_query_batches.inc();
    const std::size_t base = out.size();
    out.resize(base + batch.size());
    parallel::parallel_for_ranked(
        0, batch.size(), opts_.threads,
        [&](std::size_t rank, std::size_t i) {
          out[base + i] = query_row(batch[i], scratch[rank]);
        });
  }
  return out;
}

void Bfhrf::refresh_index_view() {
  if (fast_store_ != nullptr) {
    index_view_ = BfhIndexView(*fast_store_);
    return;
  }
  if (sharded_store_ != nullptr) {
    index_view_ = BfhIndexView(*sharded_store_);
    return;
  }
  if (const auto* mapped =
          dynamic_cast<const MappedFrequencyStore*>(store_.get());
      mapped != nullptr && mapped->kind() == MappedStoreKind::Raw) {
    index_view_ = mapped->index_view();
    return;
  }
  index_view_ = BfhIndexView{};  // compressed: legacy virtual query loop
}

void Bfhrf::adopt_store(std::unique_ptr<FrequencyStore> store,
                        std::size_t reference_trees) {
  store_ = std::move(store);
  fast_store_ = nullptr;
  sharded_store_ = nullptr;
  if (!opts_.compressed_keys) {
    if (auto* sharded = dynamic_cast<ShardedFrequencyHash*>(store_.get())) {
      sharded_store_ = sharded;
    } else if (auto* hash = dynamic_cast<FrequencyHash*>(store_.get())) {
      fast_store_ = hash;
    }
  }
  reference_trees_ = reference_trees;
  publish_store_metrics();
}

void Bfhrf::publish_store_metrics() {
  refresh_index_view();
  g_unique.set(static_cast<double>(store_->unique_count()));
  g_resident.set(static_cast<double>(store_->memory_bytes()));
  if (fast_store_ != nullptr) {
    g_load_factor.set(fast_store_->load_factor());
    g_capacity.set(static_cast<double>(fast_store_->capacity_slots()));
    // probe_stats() is an O(U) scan; publish runs once per build, so the
    // cost stays off the hot paths (Gauge::set also takes the registry
    // lock, which is why these are not updated per lookup).
    const auto stats = fast_store_->probe_stats();
    g_mean_probe.set(stats.mean_groups);
    g_max_probe.set(static_cast<double>(stats.max_groups));
    g_tombstone_ratio.set(fast_store_->tombstone_ratio());
  }
  if (sharded_store_ != nullptr) {
    g_shard_count.set(static_cast<double>(sharded_store_->shard_count()));
    g_shard_skew.set(sharded_store_->shard_skew());
  }
}

BfhrfStats Bfhrf::stats() const {
  return BfhrfStats{
      .reference_trees = reference_trees_,
      .unique_bipartitions = store_->unique_count(),
      .total_bipartitions = store_->total_count(),
      .hash_memory_bytes = store_->memory_bytes(),
  };
}

// --- DynamicBfhIndex --------------------------------------------------------

namespace {
// The dynamic index's remove/replace paths mutate one concrete
// FrequencyHash; force the single-table store regardless of the caller's
// shard request.
BfhrfOptions dynamic_opts(BfhrfOptions o) {
  o.shards = 1;
  return o;
}
}  // namespace

DynamicBfhIndex::DynamicBfhIndex(std::size_t n_bits, BfhrfOptions opts)
    : engine_(n_bits, dynamic_opts(std::move(opts))) {}

DynamicBfhIndex::Entry DynamicBfhIndex::extract_entry(
    const phylo::Tree& tree) {
  if (!tree.taxa() || tree.taxa()->size() != engine_.n_bits_) {
    throw InvalidArgument(
        "DynamicBfhIndex: tree taxon universe width mismatch");
  }
  // Always sorted: replace_tree's merge walk relies on compare_words order
  // (the BipartitionSet finalize order).
  const phylo::BipartitionOptions bip_opts{
      .include_trivial = engine_.opts_.include_trivial, .sorted = true};
  const phylo::BipartitionSet& bips =
      scratch_.extractor.extract(tree, bip_opts);

  Entry e;
  e.live = true;
  if (engine_.opts_.variant == nullptr) {
    const auto arena = bips.arena_view();
    e.keys.assign(arena.begin(), arena.end());
    return e;
  }
  const RfVariant& v = engine_.variant();
  const std::size_t n_bits = engine_.n_bits_;
  e.keys.reserve(bips.arena_view().size());
  e.weights.reserve(bips.size());
  bips.for_each([&](util::ConstWordSpan words) {
    const BipartitionRef ref{words, n_bits, util::popcount_words(words)};
    if (!v.keep(ref)) {
      return;
    }
    e.keys.insert(e.keys.end(), words.begin(), words.end());
    e.weights.push_back(v.weight(ref));
  });
  return e;
}

void DynamicBfhIndex::apply_add(const Entry& e) {
  const std::size_t wp = util::words_for_bits(engine_.n_bits_);
  const std::size_t n = e.size(wp);
  const double* weights = e.weights.empty() ? nullptr : e.weights.data();
  if (engine_.use_batched_add()) {
    static_cast<FrequencyHash&>(*engine_.store_)
        .add_many(e.keys.data(), n, weights);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      engine_.store_->add_weighted({e.keys.data() + i * wp, wp}, 1,
                                   weights != nullptr ? weights[i] : 1.0);
    }
  }
  ++engine_.reference_trees_;
}

void DynamicBfhIndex::apply_remove(const Entry& e) {
  const std::size_t wp = util::words_for_bits(engine_.n_bits_);
  const std::size_t n = e.size(wp);
  const double* weights = e.weights.empty() ? nullptr : e.weights.data();
  if (engine_.use_batched_add()) {
    static_cast<FrequencyHash&>(*engine_.store_)
        .remove_many(e.keys.data(), n, weights);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      engine_.store_->remove_weighted({e.keys.data() + i * wp, wp}, 1,
                                      weights != nullptr ? weights[i] : 1.0);
    }
  }
  --engine_.reference_trees_;
}

DynamicBfhIndex::Entry& DynamicBfhIndex::live_entry(std::size_t id) {
  if (id >= entries_.size() || !entries_[id].live) {
    throw InvalidArgument("DynamicBfhIndex: unknown or removed tree id");
  }
  return entries_[id];
}

std::size_t DynamicBfhIndex::add_tree(const phylo::Tree& tree) {
  Entry e = extract_entry(tree);
  apply_add(e);
  entries_.push_back(std::move(e));
  ++live_;
  g_delta_tree_adds.inc();
  engine_.publish_store_metrics();
  return entries_.size() - 1;
}

std::vector<std::size_t> DynamicBfhIndex::add_trees(
    std::span<const phylo::Tree> trees) {
  std::vector<std::size_t> ids;
  ids.reserve(trees.size());
  for (const phylo::Tree& t : trees) {
    Entry e = extract_entry(t);
    apply_add(e);
    entries_.push_back(std::move(e));
    ++live_;
    ids.push_back(entries_.size() - 1);
  }
  g_delta_tree_adds.inc(trees.size());
  engine_.publish_store_metrics();
  return ids;
}

void DynamicBfhIndex::remove_tree(std::size_t id) {
  Entry& e = live_entry(id);
  apply_remove(e);
  // Release the dead entry's key storage; the id slot stays (ids are
  // stable, is_live(id) turns false).
  e = Entry{};
  --live_;
  g_delta_tree_removes.inc();
  engine_.publish_store_metrics();
}

void DynamicBfhIndex::remove_trees(std::span<const std::size_t> ids) {
  for (const std::size_t id : ids) {
    Entry& e = live_entry(id);
    apply_remove(e);
    e = Entry{};
    --live_;
  }
  g_delta_tree_removes.inc(ids.size());
  engine_.publish_store_metrics();
}

DynamicBfhIndex::DeltaStats DynamicBfhIndex::replace_tree(
    std::size_t id, const phylo::Tree& next) {
  Entry& old = live_entry(id);
  Entry fresh = extract_entry(next);
  const std::size_t wp = util::words_for_bits(engine_.n_bits_);

  // One merge walk over the two compare_words-sorted arenas: keys only in
  // `old` are decremented, keys only in `fresh` are incremented, shared
  // keys are never touched — so the hash does exactly
  // |old Δ fresh| operations, O(edges-changed) for an SPR/NNI perturbation.
  scratch_.kept_keys.clear();      // staging: keys to remove
  scratch_.kept_weights.clear();   // aligned weights to remove
  std::vector<std::uint64_t> add_keys;
  std::vector<double> add_weights;
  const bool weighted = engine_.opts_.variant != nullptr;
  DeltaStats d;
  const std::size_t n_old = old.size(wp);
  const std::size_t n_new = fresh.size(wp);
  std::size_t i = 0;
  std::size_t j = 0;
  const auto old_key = [&](std::size_t k) {
    return util::ConstWordSpan{old.keys.data() + k * wp, wp};
  };
  const auto new_key = [&](std::size_t k) {
    return util::ConstWordSpan{fresh.keys.data() + k * wp, wp};
  };
  const auto stage_remove = [&](std::size_t k) {
    const auto key = old_key(k);
    scratch_.kept_keys.insert(scratch_.kept_keys.end(), key.begin(),
                              key.end());
    if (weighted) {
      scratch_.kept_weights.push_back(old.weights[k]);
    }
    ++d.keys_removed;
  };
  const auto stage_add = [&](std::size_t k) {
    const auto key = new_key(k);
    add_keys.insert(add_keys.end(), key.begin(), key.end());
    if (weighted) {
      add_weights.push_back(fresh.weights[k]);
    }
    ++d.keys_added;
  };
  while (i < n_old && j < n_new) {
    const int c = util::compare_words(old_key(i), new_key(j));
    if (c == 0) {
      ++d.keys_shared;
      ++i;
      ++j;
    } else if (c < 0) {
      stage_remove(i++);
    } else {
      stage_add(j++);
    }
  }
  for (; i < n_old; ++i) {
    stage_remove(i);
  }
  for (; j < n_new; ++j) {
    stage_add(j);
  }

  // Apply removals first so a key moving out and back in the same swap
  // cannot transiently double-count; reference_trees_ is unchanged (the
  // collection still has the same number of trees).
  const double* rem_w = weighted ? scratch_.kept_weights.data() : nullptr;
  const double* add_w = weighted ? add_weights.data() : nullptr;
  if (engine_.use_batched_add()) {
    auto& hash = static_cast<FrequencyHash&>(*engine_.store_);
    hash.remove_many(scratch_.kept_keys.data(), d.keys_removed, rem_w);
    hash.add_many(add_keys.data(), d.keys_added, add_w);
  } else {
    for (std::size_t k = 0; k < d.keys_removed; ++k) {
      engine_.store_->remove_weighted(
          {scratch_.kept_keys.data() + k * wp, wp}, 1,
          rem_w != nullptr ? rem_w[k] : 1.0);
    }
    for (std::size_t k = 0; k < d.keys_added; ++k) {
      engine_.store_->add_weighted({add_keys.data() + k * wp, wp}, 1,
                                   add_w != nullptr ? add_w[k] : 1.0);
    }
  }

  old = std::move(fresh);
  g_delta_replacements.inc();
  g_delta_keys_added.inc(d.keys_added);
  g_delta_keys_removed.inc(d.keys_removed);
  g_delta_keys_shared.inc(d.keys_shared);
  engine_.publish_store_metrics();
  return d;
}

void DynamicBfhIndex::compact() {
  engine_.store_->compact();
  engine_.publish_store_metrics();
}

std::vector<double> bfhrf_average_rf(std::span<const phylo::Tree> queries,
                                     std::span<const phylo::Tree> reference,
                                     const BfhrfOptions& opts) {
  if (reference.empty()) {
    throw InvalidArgument("bfhrf_average_rf: empty reference collection");
  }
  const auto& taxa = reference.front().taxa();
  Bfhrf engine(taxa->size(), opts);
  engine.build(reference);
  return engine.query(queries);
}

}  // namespace bfhrf::core
