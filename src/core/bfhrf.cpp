#include "core/bfhrf.hpp"

#include "core/compressed_hash.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/error.hpp"

namespace bfhrf::core {
namespace {

// Engine-phase metrics (docs/OBSERVABILITY.md): phase-1 build wall time and
// tree/batch counts, merge cost, phase-2 query throughput inputs, and the
// post-build store shape (U, resident bytes).
const obs::Counter g_build_trees = obs::counter("bfhrf.build.trees");
const obs::Counter g_build_batches = obs::counter("bfhrf.build.batches");
const obs::Counter g_query_trees = obs::counter("bfhrf.query.trees");
const obs::Counter g_query_batches = obs::counter("bfhrf.query.batches");
const obs::Counter g_query_bips = obs::counter("bfhrf.query.bipartitions");
const obs::Gauge g_unique = obs::gauge("bfhrf.unique_bipartitions");
const obs::Gauge g_resident = obs::gauge("bfhrf.hash.resident_bytes");
const obs::Histogram g_build_seconds = obs::histogram("bfhrf.build.seconds");
const obs::Histogram g_merge_seconds = obs::histogram("bfhrf.merge.seconds");
const obs::Histogram g_query_seconds = obs::histogram("bfhrf.query.seconds");

}  // namespace

Bfhrf::Bfhrf(std::size_t n_bits, BfhrfOptions opts)
    : n_bits_(n_bits), opts_(opts) {
  if (n_bits_ == 0) {
    throw InvalidArgument("Bfhrf: empty taxon universe");
  }
  opts_.threads = parallel::effective_threads(opts_.threads);
  if (opts_.batch_size == 0) {
    opts_.batch_size = 1;
  }
  store_ = make_store();
}

std::unique_ptr<FrequencyStore> Bfhrf::make_store() const {
  if (opts_.compressed_keys) {
    return std::make_unique<CompressedFrequencyHash>(n_bits_);
  }
  return std::make_unique<FrequencyHash>(n_bits_);
}

void Bfhrf::add_tree(const phylo::Tree& tree, FrequencyStore& target) const {
  if (!tree.taxa() || tree.taxa()->size() != n_bits_) {
    throw InvalidArgument("Bfhrf: tree taxon universe width mismatch");
  }
  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts_.include_trivial};
  const auto bips = phylo::extract_bipartitions(tree, bip_opts);
  const RfVariant& v = variant();
  bips.for_each([&](util::ConstWordSpan words) {
    const BipartitionRef ref{words, n_bits_, util::popcount_words(words)};
    if (!v.keep(ref)) {
      return;
    }
    target.add_weighted(words, 1, v.weight(ref));
  });
}

void Bfhrf::build(std::span<const phylo::Tree> reference) {
  const obs::TraceSpan span("bfhrf.build");
  const obs::ScopedTimer timer(g_build_seconds);
  if (opts_.threads <= 1 || reference.size() < 2) {
    for (const auto& t : reference) {
      add_tree(t, *store_);
    }
  } else {
    // Per-worker private stores; merged in rank order (deterministic
    // counts).
    std::vector<std::unique_ptr<FrequencyStore>> partials;
    partials.reserve(opts_.threads);
    for (std::size_t i = 0; i < opts_.threads; ++i) {
      partials.push_back(make_store());
    }
    parallel::parallel_for_ranked(
        0, reference.size(), opts_.threads,
        [&](std::size_t rank, std::size_t i) {
          add_tree(reference[i], *partials[rank]);
        });
    const obs::ScopedTimer merge_timer(g_merge_seconds);
    for (const auto& p : partials) {
      store_->merge_from(*p);
    }
  }
  reference_trees_ += reference.size();
  g_build_trees.inc(reference.size());
  publish_store_metrics();
}

void Bfhrf::build(TreeSource& reference) {
  const obs::TraceSpan span("bfhrf.build");
  const obs::ScopedTimer timer(g_build_seconds);
  std::vector<std::unique_ptr<FrequencyStore>> partials;
  partials.reserve(opts_.threads);
  for (std::size_t i = 0; i < opts_.threads; ++i) {
    partials.push_back(make_store());
  }
  std::vector<phylo::Tree> batch;
  batch.reserve(opts_.batch_size * opts_.threads);
  std::size_t seen = 0;
  while (true) {
    batch.clear();
    phylo::Tree t;
    while (batch.size() < opts_.batch_size * opts_.threads &&
           reference.next(t)) {
      batch.push_back(std::move(t));
    }
    if (batch.empty()) {
      break;
    }
    seen += batch.size();
    g_build_batches.inc();
    g_build_trees.inc(batch.size());
    parallel::parallel_for_ranked(
        0, batch.size(), opts_.threads,
        [&](std::size_t rank, std::size_t i) {
          add_tree(batch[i], *partials[rank]);
        });
  }
  {
    const obs::ScopedTimer merge_timer(g_merge_seconds);
    for (const auto& p : partials) {
      store_->merge_from(*p);
    }
  }
  reference_trees_ += seen;
  publish_store_metrics();
}

double Bfhrf::query_bipartitions(const phylo::BipartitionSet& bips) const {
  if (reference_trees_ == 0) {
    throw InvalidArgument("Bfhrf::query before build");
  }
  const auto r = static_cast<double>(reference_trees_);
  const RfVariant& v = variant();

  // Algorithm 2's two accumulators, generalized to weights.
  double rf_left = store_->total_weight();  // sumBFHR
  double rf_right = 0.0;
  double query_weight_sum = 0.0;            // Σ w(b') for MaxScaled

  std::uint64_t kept = 0;
  bips.for_each([&](util::ConstWordSpan words) {
    const BipartitionRef ref{words, n_bits_, util::popcount_words(words)};
    if (!v.keep(ref)) {
      return;
    }
    const double w = v.weight(ref);
    const double freq = static_cast<double>(store_->frequency(words));
    rf_left -= w * freq;
    rf_right += w * (r - freq);
    query_weight_sum += w;
    ++kept;
  });
  g_query_bips.inc(kept);

  const double avg = (rf_left + rf_right) / r;
  const double max_avg = (store_->total_weight() / r) + query_weight_sum;
  return apply_norm(avg, max_avg, opts_.norm);
}

double Bfhrf::query_one(const phylo::Tree& tree) const {
  if (!tree.taxa() || tree.taxa()->size() != n_bits_) {
    throw InvalidArgument("Bfhrf: tree taxon universe width mismatch");
  }
  const phylo::BipartitionOptions bip_opts{.include_trivial =
                                               opts_.include_trivial};
  return query_bipartitions(phylo::extract_bipartitions(tree, bip_opts));
}

std::vector<double> Bfhrf::query(
    std::span<const phylo::Tree> queries) const {
  const obs::TraceSpan span("bfhrf.query");
  const obs::ScopedTimer timer(g_query_seconds);
  std::vector<double> out(queries.size(), 0.0);
  parallel::parallel_for(0, queries.size(), opts_.threads,
                         [&](std::size_t i) { out[i] = query_one(queries[i]); });
  g_query_trees.inc(queries.size());
  return out;
}

std::vector<double> Bfhrf::query(TreeSource& queries) const {
  const obs::TraceSpan span("bfhrf.query");
  const obs::ScopedTimer timer(g_query_seconds);
  std::vector<double> out;
  std::vector<phylo::Tree> batch;
  batch.reserve(opts_.batch_size * opts_.threads);
  while (true) {
    batch.clear();
    phylo::Tree t;
    while (batch.size() < opts_.batch_size * opts_.threads &&
           queries.next(t)) {
      batch.push_back(std::move(t));
    }
    if (batch.empty()) {
      break;
    }
    g_query_batches.inc();
    const std::size_t base = out.size();
    out.resize(base + batch.size());
    parallel::parallel_for(
        0, batch.size(), opts_.threads,
        [&](std::size_t i) { out[base + i] = query_one(batch[i]); });
  }
  g_query_trees.inc(out.size());
  return out;
}

void Bfhrf::publish_store_metrics() const {
  g_unique.set(static_cast<double>(store_->unique_count()));
  g_resident.set(static_cast<double>(store_->memory_bytes()));
}

BfhrfStats Bfhrf::stats() const {
  return BfhrfStats{
      .reference_trees = reference_trees_,
      .unique_bipartitions = store_->unique_count(),
      .total_bipartitions = store_->total_count(),
      .hash_memory_bytes = store_->memory_bytes(),
  };
}

std::vector<double> bfhrf_average_rf(std::span<const phylo::Tree> queries,
                                     std::span<const phylo::Tree> reference,
                                     const BfhrfOptions& opts) {
  if (reference.empty()) {
    throw InvalidArgument("bfhrf_average_rf: empty reference collection");
  }
  const auto& taxa = reference.front().taxa();
  Bfhrf engine(taxa->size(), opts);
  engine.build(reference);
  return engine.query(queries);
}

}  // namespace bfhrf::core
