#include "core/index_file.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define BFHRF_HAVE_MMAP 1
#else
#define BFHRF_HAVE_MMAP 0
#endif

#include "obs/metrics.hpp"
#include "util/bitset.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace bfhrf::core {
namespace {

const obs::Counter g_writes = obs::counter("bfhrf.index.file.writes");
const obs::Counter g_save_compactions =
    obs::counter("bfhrf.index.file.save_compactions");
const obs::Counter g_mmap_loads = obs::counter("bfhrf.index.mmap.loads");
const obs::Counter g_mmap_advised = obs::counter("bfhrf.index.mmap.advised");
const obs::Gauge g_mmap_bytes = obs::gauge("bfhrf.index.mmap.bytes");
const obs::Histogram g_load_seconds =
    obs::histogram("bfhrf.index.mmap.load_seconds");

constexpr std::uint64_t align_up(std::uint64_t v) noexcept {
  return (v + (kMappedSectionAlign - 1)) &
         ~std::uint64_t{kMappedSectionAlign - 1};
}

void require(bool ok, const std::string& path, const char* what) {
  if (!ok) {
    throw ParseError("mapped index '" + path + "': " + what);
  }
}

/// Position-tracking binary writer with zero-padding up to aligned offsets.
class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
    if (!out_) {
      throw Error("cannot open '" + path + "' for writing");
    }
  }

  void write(const void* p, std::size_t n) {
    out_.write(static_cast<const char*>(p),
               static_cast<std::streamsize>(n));
    pos_ += n;
  }

  void pad_to(std::uint64_t off) {
    BFHRF_ASSERT(off >= pos_);
    static constexpr char kZeros[kMappedSectionAlign] = {};
    while (pos_ < off) {
      const std::uint64_t n = std::min<std::uint64_t>(off - pos_,
                                                      sizeof kZeros);
      write(kZeros, static_cast<std::size_t>(n));
    }
  }

  [[nodiscard]] std::uint64_t pos() const noexcept { return pos_; }

  void finish() {
    out_.flush();
    if (!out_) {
      throw Error("write failed for '" + path_ + "'");
    }
  }

 private:
  std::string path_;
  std::ofstream out_;
  std::uint64_t pos_ = 0;
};

}  // namespace

void write_index_file(const FrequencyStore& store, const IndexFileMeta& meta,
                      const std::string& path) {
  if (std::endian::native != std::endian::little) {
    throw Error("the mapped index format is little-endian only");
  }

  // Resolve the concrete store: a list of raw shards, or one compressed
  // table.
  std::vector<const FrequencyHash*> raw;
  const CompressedFrequencyHash* comp = nullptr;
  if (const auto* sh = dynamic_cast<const ShardedFrequencyHash*>(&store)) {
    raw.reserve(sh->shard_count());
    for (std::size_t s = 0; s < sh->shard_count(); ++s) {
      raw.push_back(&sh->shard(s));
    }
  } else if (const auto* f = dynamic_cast<const FrequencyHash*>(&store)) {
    raw.push_back(f);
  } else if (const auto* c =
                 dynamic_cast<const CompressedFrequencyHash*>(&store)) {
    comp = c;
  } else {
    throw InvalidArgument(
        "write_index_file: unsupported store type (a mapped store's backing "
        "file already is the index)");
  }

  // Never persist tombstones: compact a private copy of any shard carrying
  // DELETED control bytes, so loaded indexes always start dense and the
  // key arenas written below hold exactly the live keys.
  std::vector<std::unique_ptr<FrequencyHash>> scrubbed;
  for (const FrequencyHash*& p : raw) {
    if (p->tombstone_count() != 0) {
      auto copy = std::make_unique<FrequencyHash>(*p);
      copy->compact();
      p = copy.get();
      scrubbed.push_back(std::move(copy));
      g_save_compactions.inc();
    }
  }
  std::unique_ptr<CompressedFrequencyHash> comp_scrubbed;
  if (comp != nullptr && comp->tombstone_count() != 0) {
    comp_scrubbed = std::make_unique<CompressedFrequencyHash>(*comp);
    comp_scrubbed->compact();
    comp = comp_scrubbed.get();
    g_save_compactions.inc();
  }

  const std::size_t shard_count = comp != nullptr ? 1 : raw.size();
  const std::size_t wp = util::words_for_bits(store.n_bits());
  const std::size_t slot_size = comp != nullptr
                                    ? sizeof(CompressedFrequencyHash::Slot)
                                    : sizeof(FrequencyHash::Slot);

  MappedHeader h{};
  std::memcpy(h.magic, kMappedMagic, sizeof h.magic);
  h.version = kMappedVersion;
  h.store_kind = static_cast<std::uint32_t>(
      comp != nullptr ? MappedStoreKind::Compressed : MappedStoreKind::Raw);
  h.flags = meta.include_trivial ? kMappedFlagIncludeTrivial : 0;
  h.shard_count = static_cast<std::uint32_t>(shard_count);
  h.n_bits = store.n_bits();
  h.words_per_key = wp;
  h.reference_trees = meta.reference_trees;
  h.unique_keys = store.unique_count();
  h.total_count = store.total_count();
  h.total_weight = store.total_weight();

  std::vector<MappedShardRecord> records(shard_count);
  std::uint64_t off =
      sizeof(MappedHeader) + shard_count * sizeof(MappedShardRecord);
  for (std::size_t s = 0; s < shard_count; ++s) {
    MappedShardRecord& r = records[s];
    if (comp != nullptr) {
      r.slot_count = comp->slots().size();
      r.key_bytes = comp->arena().size();
      r.live_keys = comp->unique_count();
      r.total_count = comp->total_count();
      r.total_weight = comp->total_weight();
    } else {
      const FrequencyHash& fh = *raw[s];
      // A compacted (or never-tombstoned) table's arena is dense: exactly
      // one key per live slot.
      BFHRF_ASSERT(fh.key_arena().size() == fh.unique_count() * wp);
      r.slot_count = fh.capacity_slots();
      r.key_bytes = fh.key_arena().size() * sizeof(std::uint64_t);
      r.live_keys = fh.unique_count();
      r.total_count = fh.total_count();
      r.total_weight = fh.total_weight();
    }
    off = align_up(off);
    r.ctrl_offset = off;
    off += r.slot_count;
    off = align_up(off);
    r.slots_offset = off;
    off += r.slot_count * slot_size;
    off = align_up(off);
    r.keys_offset = off;
    off += r.key_bytes;
  }
  h.file_bytes = off;

  FileWriter w(path);
  w.write(&h, sizeof h);
  w.write(records.data(), shard_count * sizeof(MappedShardRecord));
  for (std::size_t s = 0; s < shard_count; ++s) {
    const MappedShardRecord& r = records[s];
    w.pad_to(r.ctrl_offset);
    const std::span<const std::uint8_t> ctrl =
        comp != nullptr ? comp->directory().ctrl_bytes()
                        : raw[s]->directory().ctrl_bytes();
    w.write(ctrl.data(), ctrl.size());
    w.pad_to(r.slots_offset);
    if (comp != nullptr) {
      // The compressed slot has 4 bytes of tail padding; stage through a
      // memset-zeroed buffer so persisted padding is deterministic.
      const std::span<const CompressedFrequencyHash::Slot> slots =
          comp->slots();
      std::vector<CompressedFrequencyHash::Slot> staged(slots.size());
      std::memset(staged.data(), 0, staged.size() * slot_size);
      for (std::size_t i = 0; i < slots.size(); ++i) {
        staged[i].fingerprint = slots[i].fingerprint;
        staged[i].offset = slots[i].offset;
        staged[i].length = slots[i].length;
        staged[i].count = slots[i].count;
      }
      w.write(staged.data(), staged.size() * slot_size);
    } else {
      const std::span<const FrequencyHash::Slot> slots = raw[s]->slots();
      w.write(slots.data(), slots.size() * slot_size);
    }
    w.pad_to(r.keys_offset);
    if (comp != nullptr) {
      const std::span<const std::byte> arena = comp->arena();
      w.write(arena.data(), arena.size());
    } else {
      const std::span<const std::uint64_t> keys = raw[s]->key_arena();
      w.write(keys.data(), keys.size() * sizeof(std::uint64_t));
    }
  }
  BFHRF_ASSERT(w.pos() == h.file_bytes);
  w.finish();
  g_writes.inc();
}

MappedIndex::MappedIndex(const std::string& path, MapAdvice advice) {
#if BFHRF_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
      void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                       PROT_READ, MAP_PRIVATE, fd, 0);
      if (p != MAP_FAILED) {
        base_ = static_cast<const std::uint8_t*>(p);
        size_ = static_cast<std::size_t>(st.st_size);
        mmapped_ = true;
        if (advice != MapAdvice::None) {
          // Advisory only: a failure (e.g. a filesystem without
          // readahead) costs nothing but the default paging behaviour.
          const int hint = advice == MapAdvice::WillNeed ? MADV_WILLNEED
                                                         : MADV_SEQUENTIAL;
          if (::madvise(p, static_cast<std::size_t>(st.st_size), hint) == 0) {
            g_mmap_advised.inc();
          }
        }
      }
    }
    ::close(fd);
  }
#else
  (void)advice;
#endif
  if (base_ == nullptr) {
    // Aligned-read fallback (no mmap, or the map failed): the cache-line
    // aligned buffer satisfies the same 16-byte group-load requirement.
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw Error("cannot open index file '" + path + "'");
    }
    in.seekg(0, std::ios::end);
    const std::streamoff len = in.tellg();
    in.seekg(0, std::ios::beg);
    fallback_.resize(len > 0 ? static_cast<std::size_t>(len) : 0);
    if (!fallback_.empty()) {
      in.read(reinterpret_cast<char*>(fallback_.data()),
              static_cast<std::streamsize>(fallback_.size()));
    }
    if (!in) {
      throw Error("failed to read index file '" + path + "'");
    }
    base_ = fallback_.data();
    size_ = fallback_.size();
  }
  try {
    validate(path);
  } catch (...) {
    release();
    throw;
  }
  g_mmap_loads.inc();
  if (mmapped_) {
    g_mmap_bytes.set(static_cast<double>(size_));
  }
}

void MappedIndex::validate(const std::string& path) const {
  require(size_ >= sizeof(MappedHeader), path, "file shorter than header");
  require(reinterpret_cast<std::uintptr_t>(base_) % util::kGroupWidth == 0,
          path, "backing memory is not 16-byte aligned");
  const MappedHeader& h = header();
  require(std::memcmp(h.magic, kMappedMagic, sizeof kMappedMagic) == 0, path,
          "bad magic (not a mapped BFHRF index)");
  require(h.version == kMappedVersion, path, "unsupported format version");
  require(h.store_kind <= 1, path, "unknown store kind");
  require(h.shard_count >= 1 &&
              std::has_single_bit(std::uint64_t{h.shard_count}),
          path, "shard count must be a power of two");
  require(h.store_kind ==
                  static_cast<std::uint32_t>(MappedStoreKind::Raw) ||
              h.shard_count == 1,
          path, "compressed stores are single-shard");
  require(h.file_bytes == size_, path, "truncated or oversized file");
  require(h.n_bits >= 1 && h.n_bits <= (std::uint64_t{1} << 31), path,
          "implausible taxon count");
  require(h.words_per_key ==
              util::words_for_bits(static_cast<std::size_t>(h.n_bits)),
          path, "words_per_key does not match n_bits");
  const std::uint64_t records_end =
      sizeof(MappedHeader) +
      std::uint64_t{h.shard_count} * sizeof(MappedShardRecord);
  require(records_end <= size_, path, "shard records out of bounds");
  const bool raw =
      h.store_kind == static_cast<std::uint32_t>(MappedStoreKind::Raw);
  const std::uint64_t slot_size = raw
                                      ? sizeof(FrequencyHash::Slot)
                                      : sizeof(CompressedFrequencyHash::Slot);
  const auto in_bounds = [&](std::uint64_t off, std::uint64_t len) {
    return off >= records_end && off <= size_ && len <= size_ - off;
  };
  std::uint64_t live = 0;
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < h.shard_count; ++s) {
    const MappedShardRecord& r = shard(s);
    require(r.slot_count >= util::kGroupWidth &&
                std::has_single_bit(r.slot_count) && r.slot_count <= size_,
            path, "bad shard slot count");
    require(r.ctrl_offset % kMappedSectionAlign == 0 &&
                r.slots_offset % kMappedSectionAlign == 0 &&
                r.keys_offset % kMappedSectionAlign == 0,
            path, "misaligned section offset");
    require(in_bounds(r.ctrl_offset, r.slot_count), path,
            "ctrl section out of bounds");
    require(in_bounds(r.slots_offset, r.slot_count * slot_size), path,
            "slot section out of bounds");
    require(in_bounds(r.keys_offset, r.key_bytes), path,
            "key section out of bounds");
    require(r.live_keys <= r.slot_count, path,
            "more live keys than slots");
    if (raw) {
      // A persisted arena is dense (the writer compacts): exactly
      // live_keys keys of words_per_key words.
      require(r.key_bytes % sizeof(std::uint64_t) == 0, path,
              "raw key arena not word-sized");
      const std::uint64_t words = r.key_bytes / sizeof(std::uint64_t);
      require(h.words_per_key != 0 && words % h.words_per_key == 0 &&
                  words / h.words_per_key == r.live_keys,
              path, "raw key arena size does not match live keys");
    }
    live += r.live_keys;
    total += r.total_count;
  }
  require(live == h.unique_keys, path,
          "per-shard live keys do not sum to the header total");
  require(total == h.total_count, path,
          "per-shard frequencies do not sum to the header total");
}

void MappedIndex::release() noexcept {
#if BFHRF_HAVE_MMAP
  if (mmapped_ && base_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(base_), size_);
  }
#endif
  base_ = nullptr;
  size_ = 0;
  mmapped_ = false;
  fallback_.clear();
}

MappedIndex::~MappedIndex() { release(); }

MappedIndex::MappedIndex(MappedIndex&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mmapped_(std::exchange(other.mmapped_, false)),
      fallback_(std::move(other.fallback_)) {}

MappedIndex& MappedIndex::operator=(MappedIndex&& other) noexcept {
  if (this != &other) {
    release();
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mmapped_ = std::exchange(other.mmapped_, false);
    fallback_ = std::move(other.fallback_);
  }
  return *this;
}

namespace {
MappedIndex open_timed(const std::string& path, MapAdvice advice) {
  const obs::ScopedTimer timer(g_load_seconds);
  return MappedIndex(path, advice);
}
}  // namespace

MappedFrequencyStore::MappedFrequencyStore(const std::string& path,
                                           MapAdvice advice)
    : index_(open_timed(path, advice)) {
  const MappedHeader& h = index_.header();
  if (kind() == MappedStoreKind::Raw) {
    shard_bits_ = static_cast<std::uint32_t>(
        std::countr_zero(std::uint64_t{h.shard_count}));
    raw_views_.reserve(h.shard_count);
    for (std::size_t s = 0; s < h.shard_count; ++s) {
      raw_views_.emplace_back(
          util::GroupDirectoryView(index_.ctrl(s).data(),
                                   static_cast<std::size_t>(
                                       index_.shard(s).slot_count)),
          index_.raw_slots(s).data(), index_.raw_keys(s).data(),
          static_cast<std::size_t>(h.words_per_key));
    }
    view_ = BfhIndexView(raw_views_, shard_bits_);
  } else {
    compressed_view_ = CompressedHashView(
        static_cast<std::size_t>(h.n_bits),
        util::GroupDirectoryView(index_.ctrl(0).data(),
                                 static_cast<std::size_t>(
                                     index_.shard(0).slot_count)),
        index_.compressed_slots(0).data(),
        index_.compressed_arena(0).data());
  }
}

void MappedFrequencyStore::read_only_violation(const char* op) {
  throw Error(std::string("MappedFrequencyStore is read-only: ") + op +
              " (warm-start a mutable store to modify a loaded index)");
}

void MappedFrequencyStore::add_weighted(util::ConstWordSpan, std::uint32_t,
                                        double) {
  read_only_violation("add_weighted");
}

void MappedFrequencyStore::remove_weighted(util::ConstWordSpan,
                                           std::uint32_t, double) {
  read_only_violation("remove_weighted");
}

void MappedFrequencyStore::merge_from(const FrequencyStore&) {
  read_only_violation("merge_from");
}

void MappedFrequencyStore::set_total_weight(double) {
  read_only_violation("set_total_weight");
}

std::uint32_t MappedFrequencyStore::frequency(util::ConstWordSpan key) const {
  if (kind() == MappedStoreKind::Compressed) {
    return compressed_view_.frequency(key);
  }
  const std::uint64_t fp = util::hash_words(key);
  return raw_views_[shard_of(fp, shard_bits_)].frequency(key);
}

void MappedFrequencyStore::for_each_key(
    const std::function<void(util::ConstWordSpan, std::uint32_t)>& fn) const {
  const MappedHeader& h = index_.header();
  if (kind() == MappedStoreKind::Raw) {
    const std::size_t wp = static_cast<std::size_t>(h.words_per_key);
    for (std::size_t s = 0; s < h.shard_count; ++s) {
      const std::span<const FrequencyHash::Slot> slots = index_.raw_slots(s);
      const std::span<const std::uint64_t> keys = index_.raw_keys(s);
      for (const FrequencyHash::Slot& slot : slots) {
        if (slot.count != 0) {
          fn({keys.data() +
                  static_cast<std::size_t>(slot.key_index) * wp,
              wp},
             slot.count);
        }
      }
    }
    return;
  }
  const SparseKeyCodec codec(static_cast<std::size_t>(h.n_bits));
  util::DynamicBitset decoded(static_cast<std::size_t>(h.n_bits));
  const std::span<const CompressedFrequencyHash::Slot> slots =
      index_.compressed_slots(0);
  const std::span<const std::byte> arena = index_.compressed_arena(0);
  for (const CompressedFrequencyHash::Slot& slot : slots) {
    if (slot.count == 0) {
      continue;
    }
    (void)codec.decode(ByteSpan{arena.data() + slot.offset, slot.length},
                       decoded);
    fn(decoded.words(), slot.count);
  }
}

void MappedFrequencyStore::warm_start(FrequencyHash& target) const {
  if (kind() != MappedStoreKind::Raw || shard_count() != 1) {
    throw InvalidArgument(
        "MappedFrequencyStore::warm_start: only raw single-shard indexes "
        "adopt directly (replay multi-shard/compressed via for_each_key)");
  }
  if (target.n_bits() != n_bits()) {
    throw InvalidArgument(
        "MappedFrequencyStore::warm_start: taxon universe mismatch");
  }
  target.adopt_layout(index_.ctrl(0), index_.raw_slots(0),
                      index_.raw_keys(0), unique_count(), total_count(),
                      total_weight());
}

}  // namespace bfhrf::core
