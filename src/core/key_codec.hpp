// SparseKeyCodec — lossless, reversible bipartition key compression
// (paper §IX: "a loss less and reversible compression of the bipartitions
// as keys in the hash to further reduce memory").
//
// Encoding of a canonical n-bit mask:
//   byte 0        : side flag (0 = set bits stored, 1 = clear bits stored)
//   varint        : k, the number of stored indices
//   varint × k    : delta-coded bit indices (first index, then gaps-1)
//
// The smaller side is stored, so a split with side size s costs
// O(s · varint) bytes instead of n/8 — real collections are dominated by
// shallow (small-side) splits, which is where the win comes from
// (measured in bench_ablation_hash, section A4c).
//
// The encoding is canonical: equal bipartitions encode to identical byte
// strings, so hash tables can compare encoded forms directly and stay
// collision-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bitset.hpp"

namespace bfhrf::core {

using ByteSpan = std::span<const std::byte>;

class SparseKeyCodec {
 public:
  /// `n_bits` is the universe width every key must have.
  explicit SparseKeyCodec(std::size_t n_bits);

  [[nodiscard]] std::size_t n_bits() const noexcept { return n_bits_; }

  /// Append the encoding of `key` (raw canonical words) to `out`.
  /// Returns the number of bytes appended.
  std::size_t encode(util::ConstWordSpan key,
                     std::vector<std::byte>& out) const;

  /// Decode one key starting at `bytes` into `out` (must be sized n_bits;
  /// it is cleared first). Returns the number of bytes consumed.
  /// Throws ParseError on malformed input.
  std::size_t decode(ByteSpan bytes, util::DynamicBitset& out) const;

  /// Length in bytes of the encoded key starting at `bytes`, without
  /// materializing it. Throws ParseError on malformed input.
  [[nodiscard]] std::size_t encoded_size(ByteSpan bytes) const;

  /// Upper bound on the encoding size of any key in this universe.
  [[nodiscard]] std::size_t max_encoded_size() const noexcept;

 private:
  std::size_t n_bits_;
};

/// LEB128 unsigned varint helpers (exposed for tests).
void put_varint(std::uint64_t v, std::vector<std::byte>& out);
/// Reads a varint at `bytes`; advances `pos`. Throws ParseError if
/// truncated or over-long.
[[nodiscard]] std::uint64_t get_varint(ByteSpan bytes, std::size_t& pos);

}  // namespace bfhrf::core
