// FrequencyHash: the Bipartition Frequency Hash BFH_R (paper §III-A).
//
// Maps canonical bipartition bitmasks to their frequency across the
// reference collection R. Three properties the paper's argument depends on,
// and which this implementation guarantees:
//
//  1. COLLISION-FREE. Open addressing with a fingerprint fast-path *and*
//     full-key verification on every probe; distinct bipartitions can never
//     merge (unlike HashRF's compressed scheme, whose collisions make RF
//     values approximate — §III-C).
//  2. NON-TRANSFORMATIVE. Full keys are retained in an arena, so the hash
//     is reversible: variants can re-examine, filter, or re-weight real
//     bipartitions after the fact (for_each), and a consensus tree can be
//     read straight out of it (core/consensus.hpp).
//  3. BOUNDED BY UNIQUE SPLITS. Memory is O(U · n/64) words for U unique
//     bipartitions — independent of r once the split distribution
//     saturates, which is the paper's sub-linear memory observation
//     (§VII-C).
//
// Layout (Swiss-table-style group probing, util/group_table.hpp): the
// 64-bit key fingerprint splits into a 57-bit slot hash choosing the home
// control group and a 7-bit tag stored in a separate control-byte
// directory. Probes compare 16 tags at once (SSE2/NEON/SWAR, runtime
// dispatched via util/simd.hpp); tag hits are verified against the full
// key. Slots are 8 bytes ({key_index, count}) — the fingerprint is NOT
// stored per slot; rehashing recomputes it from the retained keys, and the
// halved slot size keeps a whole group's slots inside two cache lines.
// Both the control directory and the slot array are cache-line aligned.
//
// Concurrency model: a FrequencyHash is single-writer. Parallel builds give
// each worker a private hash and merge() them afterwards (src/core/bfhrf).
// The read path (frequency/frequency_many) is safe for concurrent readers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/frequency_store.hpp"
#include "util/bitset.hpp"
#include "util/group_table.hpp"
#include "util/hash.hpp"
#include "util/memory.hpp"

namespace bfhrf::core {

class FrequencyHash final : public FrequencyStore {
 public:
  /// One table slot: an index into the key arena plus the key's frequency.
  /// Public (and exactly 8 bytes with no padding) because the slot array is
  /// persisted verbatim by the mapped index format (core/index_file) and
  /// addressed directly by FrequencyHashView over mapped memory.
  struct Slot {
    std::uint32_t key_index = 0;  ///< key lives at keys[key_index*words_per]
    std::uint32_t count = 0;      ///< 0 marks an empty slot
  };
  static_assert(sizeof(Slot) == 8 && alignof(Slot) == 4,
                "Slot layout is part of the on-disk index format");

  /// `n_bits` = taxon universe width; `expected_unique` pre-sizes the table.
  explicit FrequencyHash(std::size_t n_bits, std::size_t expected_unique = 0);

  [[nodiscard]] std::size_t n_bits() const noexcept override {
    return n_bits_;
  }
  [[nodiscard]] std::size_t words_per_key() const noexcept {
    return words_per_;
  }

  /// Number of distinct bipartitions stored.
  [[nodiscard]] std::size_t unique_count() const noexcept override {
    return size_;
  }

  /// Σ frequencies — the paper's `sumBFHR` (unit-weight case).
  [[nodiscard]] std::uint64_t total_count() const noexcept override {
    return total_;
  }

  /// Σ weight·frequency — `sumBFHR` under a weighted variant. The weight of
  /// each key is supplied at insertion time and must be consistent across
  /// calls (it is a function of the key).
  [[nodiscard]] double total_weight() const noexcept override {
    return total_weight_;
  }

  /// Add `count` occurrences with an explicit per-key weight (`add(key)`
  /// from the base class is the unit-weight shorthand).
  void add_weighted(util::ConstWordSpan key, std::uint32_t count,
                    double weight) override;

  /// Remove `count` occurrences (the inverse of add_weighted). A key whose
  /// frequency reaches zero is erased: its control byte becomes a DELETED
  /// tombstone (probe chains stay intact) and its arena key lingers until
  /// compaction. Throws InvalidArgument if the key is absent or `count`
  /// exceeds its frequency — a count can never go below zero.
  void remove_weighted(util::ConstWordSpan key, std::uint32_t count,
                       double weight) override;

  /// Frequency of a bipartition (0 if absent).
  [[nodiscard]] std::uint32_t frequency(
      util::ConstWordSpan key) const override;

  /// Sentinel returned by key_index_of() for an absent key.
  static constexpr std::uint32_t kNoKeyIndex = 0xffffffffU;

  /// Arena index of a stored bipartition, or kNoKeyIndex if absent. On a
  /// freshly built (never-mutated) hash the arena appends keys in first-
  /// insertion order, so these indexes form a dense id space [0, U) — the
  /// universe numbering the bit-matrix all-pairs engine (core/bit_matrix)
  /// encodes trees against. A hash that has seen removals may have arena
  /// holes until compact(); the bit-matrix path only ever builds fresh.
  [[nodiscard]] std::uint32_t key_index_of(util::ConstWordSpan key) const;

  /// Batched lookup: `keys` is a contiguous arena of `count` keys of
  /// words_per_key() words each (a BipartitionSet arena qualifies);
  /// out[i] receives the frequency of key i. Runs a software-prefetch
  /// pipeline — fingerprints are computed ahead, the control-group and
  /// slot-group cache lines are prefetched 8 keys out and the key-arena
  /// line 4 keys out — and takes a single-word-key fast path
  /// (words_per_key() == 1, i.e. n <= 64) that replaces the full-key
  /// memcmp loop with one 64-bit compare. This is the devirtualized hot
  /// path of Bfhrf::query (Algorithm 2's per-split lookup).
  void frequency_many(const std::uint64_t* keys, std::size_t count,
                      std::uint32_t* out) const;

  /// Batched insert: add `count` keys from a contiguous arena (one
  /// occurrence each), with per-key weights (`weights[i]`; nullptr = unit
  /// weights). Runs the same software-prefetch pipeline as
  /// frequency_many — the table is pre-sized for the whole batch up front,
  /// so no rehash invalidates prefetched lines mid-batch. Insertion
  /// order matches the arena order, so totals accumulate exactly as the
  /// per-key add_weighted loop would.
  void add_many(const std::uint64_t* keys, std::size_t count,
                const double* weights);

  /// Batched remove: subtract one occurrence of each of `count` arena keys,
  /// with per-key weights (nullptr = unit weights) — the inverse of
  /// add_many. Mirrors add_many's prefetch pipeline; removal never grows or
  /// reallocates, so prefetched lines stay valid for the whole batch.
  /// Throws InvalidArgument on an unknown key (removals earlier in the
  /// batch stand — the caller's oracle treats any throw as fatal). May end
  /// with a tombstone-ratio-triggered compaction (see compact()).
  void remove_many(const std::uint64_t* keys, std::size_t count,
                   const double* weights);

  /// Rebuild in place at the current slot count: drops every tombstone,
  /// repacks the key arena (dead keys freed), preserves all (key, count)
  /// contents and iteration results. Runs automatically when removals push
  /// the tombstone ratio past kMaxTombstoneRatio.
  void compact() override;

  /// Pre-size for `expected_unique` distinct keys: one rehash now instead
  /// of a cascade of doublings during build/merge. Never shrinks.
  void reserve(std::size_t expected_unique) override;

  /// Fold another hash into this one (used to combine per-thread builds).
  void merge(const FrequencyHash& other);

  void merge_from(const FrequencyStore& other) override;

  void for_each_key(const std::function<void(util::ConstWordSpan,
                                             std::uint32_t)>& fn)
      const override {
    for_each(fn);
  }

  void set_total_weight(double w) override { total_weight_ = w; }

  /// Visit every (key, frequency) pair. Order is unspecified.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.count != 0) {
        fn(key_at(s.key_index), s.count);
      }
    }
  }

  /// Exact bytes held by the control directory (including its cache-line
  /// padding), the slot array, and the key arena.
  [[nodiscard]] std::size_t memory_bytes() const noexcept override {
    return dir_.memory_bytes() + slots_.capacity() * sizeof(Slot) +
           keys_.capacity() * sizeof(std::uint64_t);
  }

  /// Occupied fraction of the slot table (diagnostics/ablation).
  [[nodiscard]] double load_factor() const noexcept {
    return slots_.empty()
               ? 0.0
               : static_cast<double>(size_) /
                     static_cast<double>(slots_.size());
  }

  /// Total slots (power of two; diagnostics/obs gauges).
  [[nodiscard]] std::size_t capacity_slots() const noexcept {
    return slots_.size();
  }

  /// Tombstoned (erased, not yet reclaimed) slots.
  [[nodiscard]] std::size_t tombstone_count() const noexcept {
    return dir_.tombstone_count();
  }

  /// Tombstoned fraction of the slot table (obs gauge
  /// bfhrf.hash.tombstone_ratio; compaction triggers past
  /// kMaxTombstoneRatio).
  [[nodiscard]] double tombstone_ratio() const noexcept {
    return slots_.empty() ? 0.0
                          : static_cast<double>(dir_.tombstone_count()) /
                                static_cast<double>(slots_.size());
  }

  /// The control-byte directory (tests / layout-equivalence oracles).
  [[nodiscard]] const util::GroupDirectory& directory() const noexcept {
    return dir_;
  }

  /// The raw slot array (index-file writer; length == capacity_slots()).
  [[nodiscard]] std::span<const Slot> slots() const noexcept {
    return {slots_.data(), slots_.size()};
  }

  /// The raw key arena in words (index-file writer). Length can exceed
  /// unique_count()*words_per_key() when tombstoned keys linger; compact()
  /// first to persist a dense arena.
  [[nodiscard]] std::span<const std::uint64_t> key_arena() const noexcept {
    return {keys_.data(), keys_.size()};
  }

  /// Adopt a verbatim (ctrl, slots, keys) image previously produced by a
  /// FrequencyHash over the same universe — the warm-start path of index
  /// deserialization: O(bytes) copies instead of re-probing every key.
  /// `ctrl` and `slots` must be the same power-of-two length; `live_keys`,
  /// `total_count` and `total_weight` restore the summary counters. The
  /// image is trusted to be self-consistent (it came from this codebase's
  /// writer, which validated it on save).
  void adopt_layout(std::span<const std::uint8_t> ctrl,
                    std::span<const Slot> slots,
                    std::span<const std::uint64_t> key_words,
                    std::size_t live_keys, std::uint64_t total_count,
                    double total_weight);

  /// Probe-length distribution over the RESIDENT keys: how many control
  /// groups a successful lookup of each stored key walks (1 = found in its
  /// home group). Computed by an O(U) scan on demand — the read path keeps
  /// no mutable statistics, so concurrent lookups stay race-free.
  struct ProbeStats {
    double mean_groups = 0.0;
    std::size_t max_groups = 0;
  };
  [[nodiscard]] ProbeStats probe_stats() const;

 private:
  [[nodiscard]] util::ConstWordSpan key_at(std::uint32_t index) const noexcept {
    return {keys_.data() + static_cast<std::size_t>(index) * words_per_,
            words_per_};
  }

  /// Group-probed find of `key` under fingerprint `fp`; statically
  /// dispatched on the Group type (hot loops hoist the level check).
  template <typename Group>
  [[nodiscard]] util::GroupDirectory::FindResult find_key(
      util::ConstWordSpan key, std::uint64_t fp) const noexcept;

  template <typename Group>
  void add_many_impl(const std::uint64_t* keys, std::size_t count,
                     const double* weights);
  template <typename Group>
  void remove_many_impl(const std::uint64_t* keys, std::size_t count,
                        const double* weights);

  /// Decrement slot `idx` (already found under `key`) by `count`, erasing
  /// it on reaching zero. Shared by the single and batched remove paths.
  void remove_at(std::size_t idx, std::uint32_t count, double weight);

  /// Grow/clean before admitting `incoming` inserts: occupancy counts
  /// tombstones (they consume probe distance and — if ignored — could
  /// starve probes of empty bytes). When live keys alone fit the current
  /// size, the rehash is same-size and just reclaims tombstones.
  void ensure_capacity(std::size_t incoming);

  /// Compact when removals have tombstoned more than kMaxTombstoneRatio of
  /// the table.
  void maybe_compact();

  void rehash(std::size_t new_slot_count);

  static constexpr double kMaxLoad = 0.7;
  static constexpr double kMaxTombstoneRatio = 0.25;

  std::size_t n_bits_ = 0;
  std::size_t words_per_ = 0;
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  double total_weight_ = 0.0;
  util::GroupDirectory dir_;               ///< control bytes (7-bit tags)
  util::CacheAlignedVector<Slot> slots_;   ///< power-of-two sized
  std::vector<std::uint64_t> keys_;        ///< arena of full keys
};

/// Non-owning read-only view over a FrequencyHash layout: the control
/// directory, slot array, and key arena as raw pointers. The batched
/// lookup pipeline lives HERE — FrequencyHash::frequency_many delegates to
/// its view, a ShardedFrequencyHash exposes one view per shard, and the
/// mapped index (core/index_file) builds views straight over mmapped file
/// sections. One probe implementation, three backings, bit-identical
/// results. All pointed-to memory must outlive the view and must satisfy
/// the directory's 16-byte alignment requirement.
class FrequencyHashView {
 public:
  using Slot = FrequencyHash::Slot;

  FrequencyHashView() = default;
  FrequencyHashView(util::GroupDirectoryView dir, const Slot* slots,
                    const std::uint64_t* keys, std::size_t words_per) noexcept
      : dir_(dir), slots_(slots), keys_(keys), words_per_(words_per) {}

  /// View over a live FrequencyHash (invalidated by any mutation of it).
  explicit FrequencyHashView(const FrequencyHash& h) noexcept
      : FrequencyHashView(h.directory().view(), h.slots().data(),
                          h.key_arena().data(), h.words_per_key()) {}

  [[nodiscard]] util::GroupDirectoryView directory() const noexcept {
    return dir_;
  }
  [[nodiscard]] std::size_t words_per_key() const noexcept {
    return words_per_;
  }

  /// Frequency of one bipartition (0 if absent).
  [[nodiscard]] std::uint32_t frequency(util::ConstWordSpan key) const;

  /// Batched lookup over a contiguous arena of `count` keys — the 4-stage
  /// software-prefetch pipeline documented at
  /// FrequencyHash::frequency_many.
  void frequency_many(const std::uint64_t* keys, std::size_t count,
                      std::uint32_t* out) const;

  /// Prefetch the home control group of `fp` (multi-shard routing loops).
  void prefetch(std::uint64_t fp) const noexcept { dir_.prefetch(fp); }

  /// Count stored for `key` under its precomputed fingerprint (0 if
  /// absent); accumulates control groups probed into `probe_groups` for
  /// the caller's one-flush-per-batch obs accounting.
  [[nodiscard]] std::uint32_t count_for(std::uint64_t fp,
                                        const std::uint64_t* key,
                                        std::uint64_t& probe_groups) const;

 private:
  template <typename Group>
  void frequency_many_impl(const std::uint64_t* keys, std::size_t count,
                           std::uint32_t* out) const;

  util::GroupDirectoryView dir_;
  const Slot* slots_ = nullptr;
  const std::uint64_t* keys_ = nullptr;
  std::size_t words_per_ = 0;
};

}  // namespace bfhrf::core
