#include "core/triplet.hpp"

#include <vector>

#include "util/error.hpp"

namespace bfhrf::core {
namespace {

using phylo::NodeId;
using phylo::TaxonId;
using phylo::Tree;

/// Resolution of {a,b,c}: 0 = ab|c, 1 = ac|b, 2 = bc|a, 3 = unresolved.
int resolve(const LcaDepthTable& t, TaxonId a, TaxonId b, TaxonId c) {
  const std::int32_t dab = t.lca_depth(a, b);
  const std::int32_t dac = t.lca_depth(a, c);
  const std::int32_t dbc = t.lca_depth(b, c);
  // Exactly one of the three is strictly deepest in a resolved triplet;
  // in any tree the two shallower ones are equal.
  if (dab > dac && dab > dbc) {
    return 0;
  }
  if (dac > dab && dac > dbc) {
    return 1;
  }
  if (dbc > dab && dbc > dac) {
    return 2;
  }
  return 3;
}

}  // namespace

LcaDepthTable::LcaDepthTable(const Tree& tree) {
  if (tree.empty() || !tree.taxa()) {
    throw InvalidArgument("LcaDepthTable: empty tree");
  }
  n_ = tree.taxa()->size();
  taxa_sorted_ = tree.leaf_taxa_sorted();
  table_.assign(n_ * n_, -1);

  // Node depths.
  std::vector<std::int32_t> depth(tree.num_nodes(), 0);
  const auto order = tree.postorder();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    if (!tree.is_root(id)) {
      depth[static_cast<std::size_t>(id)] =
          depth[static_cast<std::size_t>(tree.node(id).parent)] + 1;
    }
  }

  // For each internal node v: every cross-child leaf pair has lca v.
  // Total cross-product work over all nodes is O(n²) exactly.
  std::vector<std::vector<TaxonId>> below(tree.num_nodes());
  for (const NodeId id : order) {
    if (tree.is_leaf(id)) {
      below[static_cast<std::size_t>(id)] = {tree.node(id).taxon};
      continue;
    }
    std::vector<TaxonId> mine;
    tree.for_each_child(id, [&](NodeId c) {
      auto& child_leaves = below[static_cast<std::size_t>(c)];
      for (const TaxonId x : mine) {
        for (const TaxonId y : child_leaves) {
          const auto xi = static_cast<std::size_t>(x);
          const auto yi = static_cast<std::size_t>(y);
          table_[xi * n_ + yi] = depth[static_cast<std::size_t>(id)];
          table_[yi * n_ + xi] = depth[static_cast<std::size_t>(id)];
        }
      }
      mine.insert(mine.end(), child_leaves.begin(), child_leaves.end());
      child_leaves.clear();
      child_leaves.shrink_to_fit();
    });
    below[static_cast<std::size_t>(id)] = std::move(mine);
  }
}

TripletDistanceResult triplet_distance(const Tree& a, const Tree& b) {
  if (a.taxa() != b.taxa()) {
    throw InvalidArgument("triplet_distance: trees must share one TaxonSet");
  }
  const LcaDepthTable ta(a);
  const LcaDepthTable tb(b);
  if (ta.taxa_sorted() != tb.taxa_sorted()) {
    throw InvalidArgument("triplet_distance: trees have different leaf sets");
  }
  const auto& taxa = ta.taxa_sorted();
  const std::size_t n = taxa.size();

  TripletDistanceResult out;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      for (std::size_t k = j + 1; k < n; ++k) {
        ++out.total;
        if (resolve(ta, taxa[i], taxa[j], taxa[k]) !=
            resolve(tb, taxa[i], taxa[j], taxa[k])) {
          ++out.different;
        }
      }
    }
  }
  return out;
}

}  // namespace bfhrf::core
