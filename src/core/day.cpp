#include "core/day.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace bfhrf::core {
namespace {

using phylo::kNoNode;
using phylo::NodeId;
using phylo::TaxonId;
using phylo::Tree;

/// Flat (CSR) undirected adjacency of an arena tree: one offsets array and
/// one neighbors array — two allocations per scan instead of one per node.
struct FlatAdjacency {
  std::vector<std::int32_t> offsets;    // num_nodes + 1
  std::vector<NodeId> neighbors;

  explicit FlatAdjacency(const Tree& t) {
    const auto nodes = static_cast<std::int32_t>(t.num_nodes());
    std::vector<std::int32_t> degree(t.num_nodes(), 0);
    for (NodeId id = 0; id < nodes; ++id) {
      const NodeId p = t.node(id).parent;
      if (p != kNoNode) {
        ++degree[static_cast<std::size_t>(id)];
        ++degree[static_cast<std::size_t>(p)];
      }
    }
    offsets.assign(t.num_nodes() + 1, 0);
    for (NodeId id = 0; id < nodes; ++id) {
      offsets[static_cast<std::size_t>(id) + 1] =
          offsets[static_cast<std::size_t>(id)] +
          degree[static_cast<std::size_t>(id)];
    }
    neighbors.resize(static_cast<std::size_t>(offsets.back()));
    std::vector<std::int32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (NodeId id = 0; id < nodes; ++id) {
      const NodeId p = t.node(id).parent;
      if (p != kNoNode) {
        neighbors[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(id)]++)] = p;
        neighbors[static_cast<std::size_t>(
            cursor[static_cast<std::size_t>(p)]++)] = id;
      }
    }
  }

  [[nodiscard]] std::span<const NodeId> of(NodeId id) const {
    return {neighbors.data() + offsets[static_cast<std::size_t>(id)],
            static_cast<std::size_t>(offsets[static_cast<std::size_t>(id) + 1] -
                                     offsets[static_cast<std::size_t>(id)])};
  }
};

/// Node id of the leaf carrying `taxon`.
NodeId find_leaf(const Tree& t, TaxonId taxon) {
  for (NodeId id = 0; id < static_cast<NodeId>(t.num_nodes()); ++id) {
    if (t.is_leaf(id) && t.node(id).taxon == taxon) {
      return id;
    }
  }
  throw InvalidArgument("DayTable: pivot taxon missing from tree");
}

/// Per-node aggregates from the pivot-rooted DFS.
struct NodeAgg {
  std::int32_t min_rank = std::numeric_limits<std::int32_t>::max();
  std::int32_t max_rank = -1;
  std::int32_t leaves = 0;
};

/// Iterative postorder DFS of `t` viewed as rooted at the neighbor of leaf
/// `pivot_leaf`, with that leaf removed. Invokes, in postorder,
///   on_leaf(node, taxon, agg)         for each leaf except the pivot;
///   on_internal(node, agg, is_last)   for each internal (>= 2 DFS
///                                     children) node except the DFS root.
/// Pass-through nodes (exactly 1 DFS child — a rooted-degree-2 root seen
/// from below) carry their child's cluster and are skipped so clusters stay
/// distinct.
template <typename OnLeaf, typename OnInternal>
void pivot_dfs(const Tree& t, NodeId pivot_leaf, const FlatAdjacency& adj,
               std::vector<NodeAgg>& agg, OnLeaf&& on_leaf,
               OnInternal&& on_internal) {
  const auto pivot_nbrs = adj.of(pivot_leaf);
  BFHRF_ASSERT(pivot_nbrs.size() == 1);
  const NodeId dfs_root = pivot_nbrs[0];

  struct Frame {
    NodeId node;
    NodeId from;
    std::uint32_t next_nbr = 0;
    std::int32_t child_count = 0;
    bool is_last_child = false;
  };
  std::vector<Frame> stack;
  stack.reserve(t.num_nodes());
  stack.push_back({dfs_root, pivot_leaf, 0, 0, true});

  while (!stack.empty()) {
    // push_back below may reallocate; index instead of holding a Frame&.
    const std::size_t fi = stack.size() - 1;
    const auto nb = adj.of(stack[fi].node);

    bool descended = false;
    while (stack[fi].next_nbr < nb.size()) {
      const NodeId child = nb[stack[fi].next_nbr++];
      if (child == stack[fi].from) {
        continue;
      }
      bool last = true;
      for (std::size_t k = stack[fi].next_nbr; k < nb.size(); ++k) {
        if (nb[k] != stack[fi].from) {
          last = false;
          break;
        }
      }
      ++stack[fi].child_count;
      stack.push_back({child, stack[fi].node, 0, 0, last});
      descended = true;
      break;
    }
    if (descended) {
      continue;
    }

    // Postorder position for stack[fi].
    const Frame done = stack[fi];
    NodeAgg& a = agg[static_cast<std::size_t>(done.node)];
    if (done.child_count == 0) {
      const TaxonId taxon = t.node(done.node).taxon;
      BFHRF_ASSERT(taxon != phylo::kNoTaxon);
      on_leaf(done.node, taxon, a);
      a.leaves = 1;
    } else if (done.node != dfs_root && done.child_count >= 2) {
      on_internal(done.node, a, done.is_last_child);
    }
    stack.pop_back();
    if (!stack.empty()) {
      NodeAgg& p = agg[static_cast<std::size_t>(done.from)];
      p.min_rank = std::min(p.min_rank, a.min_rank);
      p.max_rank = std::max(p.max_rank, a.max_rank);
      p.leaves += a.leaves;
    }
  }
}

}  // namespace

DayTable::DayTable(const phylo::Tree& base_in, bool include_trivial)
    : include_trivial_(include_trivial) {
  if (base_in.empty() || !base_in.taxa()) {
    throw InvalidArgument("DayTable: empty tree");
  }
  // Canonical unrooted form: a rooted-degree-2 root would be a pass-through
  // node in the pivot view. pivot_dfs skips pass-throughs during scans, but
  // for the BASE tree the slot-uniqueness argument assumes none exist, so
  // dissolve the root up front (one-time cost per table).
  Tree base = base_in;
  base.deroot();

  base_taxa_sorted_ = base.leaf_taxa_sorted();
  n_tree_ = base_taxa_sorted_.size();
  if (n_tree_ < 2) {
    throw InvalidArgument("DayTable: need at least 2 leaves");
  }
  pivot_ = base_taxa_sorted_.front();

  rank_of_taxon_.assign(base.taxa()->size(), -1);
  const std::size_t m = n_tree_ - 1;  // ranked leaves (pivot excluded)
  table_l_.assign(m, -1);
  table_r_.assign(m, -1);

  const FlatAdjacency adj(base);
  std::vector<NodeAgg> agg(base.num_nodes());
  std::int32_t next_rank = 0;

  pivot_dfs(
      base, find_leaf(base, pivot_), adj, agg,
      [&](NodeId /*node*/, TaxonId taxon, NodeAgg& a) {
        const std::int32_t rank = next_rank++;
        rank_of_taxon_[static_cast<std::size_t>(taxon)] = rank;
        a.min_rank = rank;
        a.max_rank = rank;
      },
      [&](NodeId /*node*/, const NodeAgg& a, bool is_last_child) {
        // Non-trivial clusters only: side size in [2, n_tree - 2].
        const auto size = static_cast<std::size_t>(a.leaves);
        if (size < 2 || size > n_tree_ - 2) {
          return;
        }
        BFHRF_ASSERT(a.max_rank - a.min_rank + 1 == a.leaves);
        ++base_clusters_;
        // Chain argument for slot uniqueness: clusters sharing a right
        // endpoint form a chain of last-children, so at most one of them is
        // a non-last child (unique per table_r_ slot); clusters sharing a
        // left endpoint form a chain of first-children, of which at most
        // one can also be a last child (unique per table_l_ slot).
        if (is_last_child) {
          table_l_[static_cast<std::size_t>(a.min_rank)] = a.max_rank;
        } else {
          table_r_[static_cast<std::size_t>(a.max_rank)] = a.min_rank;
        }
      });
  BFHRF_ASSERT(static_cast<std::size_t>(next_rank) == m);
}

DayTable::OtherScan DayTable::scan_other(const phylo::Tree& other) const {
  // Hot path (called once per pair): no tree copy, no sorting. Leaf-set
  // equality is validated inline — every leaf must carry a ranked taxon and
  // the leaf count must match (equal-size subsets of a shared universe with
  // no duplicates are equal sets).
  if (other.empty() || !other.taxa() ||
      other.taxa()->size() != rank_of_taxon_.size()) {
    throw InvalidArgument("DayTable: tree universe mismatch");
  }
  if (other.num_leaves() != n_tree_) {
    throw InvalidArgument("DayTable: trees have different leaf sets");
  }
  OtherScan out;
  const FlatAdjacency adj(other);
  std::vector<NodeAgg> agg(other.num_nodes());

  pivot_dfs(
      other, find_leaf(other, pivot_), adj, agg,
      [&](NodeId /*node*/, TaxonId taxon, NodeAgg& a) {
        const std::int32_t rank =
            rank_of_taxon_[static_cast<std::size_t>(taxon)];
        if (rank < 0) {
          throw InvalidArgument("DayTable: trees have different leaf sets");
        }
        a.min_rank = rank;
        a.max_rank = rank;
      },
      [&](NodeId /*node*/, const NodeAgg& a, bool /*is_last_child*/) {
        const auto size = static_cast<std::size_t>(a.leaves);
        if (size < 2 || size > n_tree_ - 2) {
          return;
        }
        ++out.clusters;
        if (a.max_rank - a.min_rank + 1 != a.leaves) {
          return;  // not contiguous in base ranks -> cannot be shared
        }
        const auto l = static_cast<std::size_t>(a.min_rank);
        const auto r = static_cast<std::size_t>(a.max_rank);
        if (table_l_[l] == a.max_rank || table_r_[r] == a.min_rank) {
          ++out.shared;
        }
      });
  return out;
}

std::pair<std::size_t, std::size_t> DayTable::rf_and_max(
    const phylo::Tree& other) const {
  const OtherScan scan = scan_other(other);
  const std::size_t rf =
      (base_clusters_ - scan.shared) + (scan.clusters - scan.shared);
  std::size_t max = base_clusters_ + scan.clusters;
  if (include_trivial_) {
    // Trivial splits are identical across same-taxa trees: they add to the
    // set sizes but never to the distance.
    max += 2 * n_tree_;
  }
  return {rf, max};
}

std::size_t DayTable::rf_against(const phylo::Tree& other) const {
  return rf_and_max(other).first;
}

std::size_t DayTable::max_rf_against(const phylo::Tree& other) const {
  return rf_and_max(other).second;
}

}  // namespace bfhrf::core
