// Rooted triplet distance (Critchlow, Pearl & Qian 1996) — the paper's
// §I "alternative metrics" reference [4], provided so RF results can be
// sanity-checked against an independent topology metric.
//
// For every 3-subset {a,b,c} of the shared taxa, a rooted tree resolves
// the triplet as ab|c, ac|b, bc|a (whichever pair has the deepest LCA) or
// leaves it unresolved (all three LCAs coincide, multifurcations only).
// The distance counts triplets the two trees resolve differently
// (resolved-vs-unresolved counts as different).
//
// Complexity: O(n²) preprocessing (pairwise LCA depths via postorder
// cross-products) + O(n³) enumeration with O(1) per triplet. Fine for the
// moderate n this library targets as a cross-check metric; sub-quadratic
// algorithms exist but are not needed here. NOTE this is a rooted metric:
// the trees' stored rootings are used as-is.
#pragma once

#include <cstdint>
#include <vector>

#include "phylo/tree.hpp"

namespace bfhrf::core {

struct TripletDistanceResult {
  std::uint64_t different = 0;  ///< triplets resolved differently
  std::uint64_t total = 0;      ///< C(n, 3)

  [[nodiscard]] double normalized() const noexcept {
    return total == 0 ? 0.0
                      : static_cast<double>(different) /
                            static_cast<double>(total);
  }
};

/// Triplet distance between two rooted trees over the same taxa.
/// Throws InvalidArgument on mismatched leaf sets.
[[nodiscard]] TripletDistanceResult triplet_distance(const phylo::Tree& a,
                                                     const phylo::Tree& b);

/// Pairwise-LCA-depth table of one rooted tree: reusable across many
/// triplet_distance-style comparisons against the same base.
class LcaDepthTable {
 public:
  explicit LcaDepthTable(const phylo::Tree& tree);

  /// Depth (root = 0) of lca(leaf of taxon x, leaf of taxon y); x != y.
  [[nodiscard]] std::int32_t lca_depth(phylo::TaxonId x,
                                       phylo::TaxonId y) const {
    return table_[static_cast<std::size_t>(x) * n_ + static_cast<std::size_t>(y)];
  }

  [[nodiscard]] const std::vector<phylo::TaxonId>& taxa_sorted() const {
    return taxa_sorted_;
  }

 private:
  std::size_t n_ = 0;  ///< taxon-universe width
  std::vector<std::int32_t> table_;
  std::vector<phylo::TaxonId> taxa_sorted_;
};

}  // namespace bfhrf::core
