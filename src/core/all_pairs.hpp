// Exact all-versus-all RF matrix, parallel.
//
// The paper positions the matrix as the product "useful for clustering
// techniques" (§VIII) but its comparator, HashRF, computes it sequentially
// and collision-prone. This module is the modern replacement: collision-
// free (sorted bipartition sets, exact merges) and parallel over rows.
// The O(r²) time/memory is inherent to the matrix itself — use Bfhrf when
// only averages are needed.
#pragma once

#include <cstddef>
#include <span>

#include "core/rf.hpp"
#include "core/rf_matrix.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

struct AllPairsOptions {
  std::size_t threads = 1;  ///< 0 = hardware default
  bool include_trivial = false;
};

/// RF distance matrix of one collection (exact; parallel over rows).
[[nodiscard]] RfMatrix all_pairs_rf(std::span<const phylo::Tree> trees,
                                    const AllPairsOptions& opts = {});

}  // namespace bfhrf::core
