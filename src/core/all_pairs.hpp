// Exact all-versus-all RF matrix, parallel.
//
// The paper positions the matrix as the product "useful for clustering
// techniques" (§VIII) but its comparator, HashRF, computes it sequentially
// and collision-prone. This module is the modern replacement: collision-
// free and parallel, with three engines behind one entry point:
//
//  * BitDense / BitSparse — the bit-matrix engines (core/bit_matrix): one
//    FrequencyHash pass assigns every unique bipartition a dense universe
//    id, each tree becomes a bit-row (or sorted id list) over that
//    universe, and RF(i,j) = d_i + d_j − 2·|row_i ∩ row_j| runs on the
//    fused popcount kernels (util/bitset) or the sorted-id intersection
//    kernels (util/sorted_ids), scheduled as cache-sized tiles through a
//    work-stealing queue.
//  * Legacy — the original row-parallel sorted-set merge walk, kept as the
//    independent reference implementation the qc oracle cross-checks the
//    bit engines against bit-for-bit.
//
// Auto (the default) measures the collection's universe density and picks
// dense rows for birthday-heavy collections (shared bipartitions, narrow
// universe) and sparse id lists for unique-heavy ones (wide universe,
// near-empty rows). The O(r²) time/memory is inherent to the matrix
// itself — use Bfhrf when only averages are needed.
#pragma once

#include <cstddef>
#include <span>

#include "core/rf.hpp"
#include "core/rf_matrix.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

/// Which all-pairs implementation to run. Auto measures universe density
/// and picks BitDense or BitSparse; Legacy (the pre-bit-matrix merge walk)
/// is never auto-selected — it exists as the qc oracle's reference.
enum class AllPairsEngine : std::uint8_t {
  Auto,
  Legacy,
  BitDense,
  BitSparse,
};

/// Universe density (mean row fill U-normalized) at or above which Auto
/// picks BitDense. Below it rows are sparse enough that sorted id lists
/// beat scanning mostly-zero popcount words. See DESIGN.md §7 for the
/// cost model behind the value.
inline constexpr double kDefaultDensityThreshold = 1.0 / 256.0;

struct AllPairsOptions {
  /// Worker threads (1 = sequential; 0 = hardware default).
  std::size_t threads = 1;
  bool include_trivial = false;

  /// Engine selection (Auto = density-measured dense/sparse pick).
  AllPairsEngine engine = AllPairsEngine::Auto;

  /// Override the Auto dense-vs-sparse crossover density
  /// (0 = kDefaultDensityThreshold).
  double density_threshold = 0.0;

  /// Rows per scheduling tile for the bit engines (0 = auto-size so a
  /// tile's row band stays resident in L2).
  std::size_t tile_rows = 0;
};

/// RF distance matrix of one collection (exact; parallel over tiles).
[[nodiscard]] RfMatrix all_pairs_rf(std::span<const phylo::Tree> trees,
                                    const AllPairsOptions& opts = {});

}  // namespace bfhrf::core
