#include "core/bit_matrix.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/frequency_hash.hpp"
#include "obs/metrics.hpp"
#include "parallel/bounded_queue.hpp"
#include "parallel/thread_pool.hpp"
#include "util/bitset.hpp"
#include "util/error.hpp"
#include "util/memory.hpp"
#include "util/sorted_ids.hpp"
#include "util/timer.hpp"

namespace bfhrf::core {
namespace {

const obs::Gauge g_universe_width = obs::gauge("bfhrf.matrix.universe_width");
const obs::Gauge g_density = obs::gauge("bfhrf.matrix.density");
const obs::Counter g_pairs = obs::counter("bfhrf.matrix.pairs");
const obs::Counter g_tiles = obs::counter("bfhrf.matrix.tiles");
const obs::Counter g_tiles_stolen = obs::counter("bfhrf.matrix.tiles_stolen");
const obs::Counter g_engine_dense = obs::counter("bfhrf.matrix.engine.dense");
const obs::Counter g_engine_sparse =
    obs::counter("bfhrf.matrix.engine.sparse");
const obs::Histogram g_encode_seconds =
    obs::histogram("bfhrf.matrix.encode.seconds");
const obs::Histogram g_tile_seconds =
    obs::histogram("bfhrf.matrix.tile.seconds");

/// One upper-triangle block of the matrix: rows [r0, r1) × cols [c0, c1),
/// cells restricted to j > i inside the block (diagonal blocks are
/// triangular). `index` is the tile's position in deal order — the static
/// owner lane is derived from it for steal accounting.
struct Tile {
  std::uint32_t r0 = 0;
  std::uint32_t r1 = 0;
  std::uint32_t c0 = 0;
  std::uint32_t c1 = 0;
  std::uint32_t index = 0;
};

/// Rows per tile so that two row bands (the tile's rows and the streamed
/// column band) stay resident in a 256 KiB L2, clamped to [8, 256] and
/// shrunk further until the triangle yields enough tiles to balance the
/// lanes.
std::size_t auto_tile_rows(std::size_t r, std::size_t row_bytes,
                           std::size_t lanes) {
  constexpr std::size_t kL2Bytes = 256 * 1024;
  std::size_t tile_rows =
      (kL2Bytes / 2) / std::max<std::size_t>(row_bytes, 1);
  tile_rows = std::clamp<std::size_t>(tile_rows, 8, 256);
  auto tiles_for = [&](std::size_t tr) {
    const std::size_t blocks = (r + tr - 1) / tr;
    return blocks * (blocks + 1) / 2;
  };
  while (tile_rows > 8 && tiles_for(tile_rows) < 4 * lanes) {
    tile_rows /= 2;
  }
  return std::max<std::size_t>(tile_rows, 1);
}

std::vector<Tile> cut_tiles(std::size_t r, std::size_t tile_rows) {
  std::vector<Tile> tiles;
  std::uint32_t index = 0;
  for (std::size_t rb = 0; rb < r; rb += tile_rows) {
    const std::size_t r1 = std::min(r, rb + tile_rows);
    for (std::size_t cb = rb; cb < r; cb += tile_rows) {
      const std::size_t c1 = std::min(r, cb + tile_rows);
      tiles.push_back({static_cast<std::uint32_t>(rb),
                       static_cast<std::uint32_t>(r1),
                       static_cast<std::uint32_t>(cb),
                       static_cast<std::uint32_t>(c1), index++});
    }
  }
  return tiles;
}

/// Run every tile through `body` across `threads` lanes via a shared
/// bounded queue — each lane takes the next tile the moment it frees up,
/// so a lane that drew cheap (near-diagonal, triangular) tiles steals from
/// the slice a static deal would have pinned elsewhere. Sequential when
/// threads <= 1 (no queue, no pool — honest single-thread baseline).
template <typename Body>
void run_tiles(const std::vector<Tile>& tiles, std::size_t threads,
               const Body& body) {
  g_tiles.inc(tiles.size());
  if (threads <= 1 || tiles.size() <= 1) {
    for (const Tile& t : tiles) {
      const util::WallTimer timer;
      body(t);
      g_tile_seconds.observe(timer.seconds());
    }
    return;
  }
  parallel::BoundedQueue<Tile> queue(tiles.size());
  for (const Tile& t : tiles) {
    Tile copy = t;
    queue.push(std::move(copy));
  }
  queue.close();
  const std::size_t lanes = threads;
  const std::size_t n_tiles = tiles.size();
  parallel::ThreadPool pool(lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    pool.submit([&queue, &body, lane, lanes, n_tiles] {
      std::uint64_t stolen = 0;
      Tile t;
      while (queue.pop(t)) {
        const util::WallTimer timer;
        body(t);
        g_tile_seconds.observe(timer.seconds());
        const std::size_t owner =
            static_cast<std::size_t>(t.index) * lanes / n_tiles;
        stolen += (owner != lane);
      }
      g_tiles_stolen.inc(stolen);
    });
  }
  pool.wait_idle();
}

}  // namespace

AllPairsEngine pick_bit_engine(const UniverseStats& stats,
                               const AllPairsOptions& opts) noexcept {
  if (opts.engine == AllPairsEngine::BitDense ||
      opts.engine == AllPairsEngine::BitSparse) {
    return opts.engine;
  }
  const double threshold = opts.density_threshold > 0.0
                               ? opts.density_threshold
                               : kDefaultDensityThreshold;
  return stats.density() >= threshold ? AllPairsEngine::BitDense
                                      : AllPairsEngine::BitSparse;
}

RfMatrix bit_matrix_rf(std::span<const phylo::BipartitionSet> sets,
                       const AllPairsOptions& opts,
                       UniverseStats* stats_out) {
  BFHRF_ASSERT(!sets.empty());
  const std::size_t r = sets.size();
  const std::size_t n_bits = sets.front().n_bits();
  const std::size_t threads = parallel::effective_threads(opts.threads);

  UniverseStats stats;
  stats.trees = r;
  for (const auto& s : sets) {
    stats.total_memberships += s.size();
  }

  // Universe pass: one FrequencyHash build over every tree's arena. The
  // arena appends keys in first-insertion order, so each unique
  // bipartition's key_index IS its dense universe id in [0, U).
  const util::WallTimer encode_timer;
  FrequencyHash universe(n_bits);
  universe.reserve(static_cast<std::size_t>(stats.total_memberships));
  for (const auto& s : sets) {
    universe.add_many(s.arena_view().data(), s.size(), nullptr);
  }
  stats.universe_width = universe.unique_count();
  g_universe_width.set(static_cast<double>(stats.universe_width));
  g_density.set(stats.density());
  if (stats_out != nullptr) {
    *stats_out = stats;
  }

  const AllPairsEngine engine = pick_bit_engine(stats, opts);
  const std::size_t universe_width = stats.universe_width;
  std::vector<std::uint32_t> d(r);
  for (std::size_t i = 0; i < r; ++i) {
    d[i] = static_cast<std::uint32_t>(sets[i].size());
  }

  RfMatrix matrix(r);

  if (engine == AllPairsEngine::BitDense) {
    g_engine_dense.inc();
    // One bit-row of U bits per tree, cache-line aligned so the popcount
    // kernels' wide loads never split lines.
    const std::size_t row_words = util::words_for_bits(universe_width);
    util::CacheAlignedVector<std::uint64_t> rows(r * row_words, 0);
    parallel::parallel_for(
        0, r, threads,
        [&](std::size_t i) {
          std::uint64_t* row = rows.data() + i * row_words;
          const auto& s = sets[i];
          for (std::size_t k = 0; k < s.size(); ++k) {
            const std::uint32_t id = universe.key_index_of(s[k]);
            row[id >> 6] |= (std::uint64_t{1} << (id & 63));
          }
        },
        /*grain=*/4);
    g_encode_seconds.observe(encode_timer.seconds());

    const std::size_t tile_rows =
        opts.tile_rows != 0
            ? opts.tile_rows
            : auto_tile_rows(r, row_words * sizeof(std::uint64_t), threads);
    const std::uint64_t* base = rows.data();
    run_tiles(cut_tiles(r, tile_rows), threads, [&](const Tile& t) {
      for (std::size_t i = t.r0; i < t.r1; ++i) {
        const util::ConstWordSpan row_i{base + i * row_words, row_words};
        for (std::size_t j = std::max<std::size_t>(t.c0, i + 1); j < t.c1;
             ++j) {
          const util::ConstWordSpan row_j{base + j * row_words, row_words};
          const std::size_t shared = util::popcount_and(row_i, row_j);
          matrix.set(i, j,
                     d[i] + d[j] - 2 * static_cast<std::uint32_t>(shared));
        }
      }
    });
  } else {
    g_engine_sparse.inc();
    // One sorted id list per tree, all in a single flat arena.
    std::vector<std::size_t> offsets(r + 1, 0);
    for (std::size_t i = 0; i < r; ++i) {
      offsets[i + 1] = offsets[i] + sets[i].size();
    }
    std::vector<std::uint32_t> ids(
        static_cast<std::size_t>(stats.total_memberships));
    parallel::parallel_for(
        0, r, threads,
        [&](std::size_t i) {
          std::uint32_t* out = ids.data() + offsets[i];
          const auto& s = sets[i];
          for (std::size_t k = 0; k < s.size(); ++k) {
            out[k] = universe.key_index_of(s[k]);
          }
          std::sort(out, out + s.size());
        },
        /*grain=*/4);
    g_encode_seconds.observe(encode_timer.seconds());

    const std::size_t mean_row_bytes =
        (static_cast<std::size_t>(stats.total_memberships) *
             sizeof(std::uint32_t) +
         r - 1) /
        r;
    const std::size_t tile_rows =
        opts.tile_rows != 0 ? opts.tile_rows
                            : auto_tile_rows(r, mean_row_bytes, threads);
    const auto ids_of = [&](std::size_t i) {
      return std::span<const std::uint32_t>{ids.data() + offsets[i],
                                            offsets[i + 1] - offsets[i]};
    };
    run_tiles(cut_tiles(r, tile_rows), threads, [&](const Tile& t) {
      for (std::size_t i = t.r0; i < t.r1; ++i) {
        const auto ids_i = ids_of(i);
        for (std::size_t j = std::max<std::size_t>(t.c0, i + 1); j < t.c1;
             ++j) {
          const std::size_t shared =
              util::intersect_count_sorted(ids_i, ids_of(j));
          matrix.set(i, j,
                     d[i] + d[j] - 2 * static_cast<std::uint32_t>(shared));
        }
      }
    });
  }

  g_pairs.inc(static_cast<std::uint64_t>(r) * (r - 1) / 2);
  return matrix;
}

}  // namespace bfhrf::core
