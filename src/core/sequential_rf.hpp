// SequentialRF (paper Alg. 1) — the DS / DSMP baselines.
//
// Precomputes B(T) for every reference tree (the paper's memory-conscious
// layout: R resident, Q streamed), then computes all q·r pairwise symmetric
// differences and averages per query tree. `threads == 1` is DS;
// `threads > 1` is DSMP (tree-level parallelism over Q).
//
// Complexity (Table I): time O(n²qr/64), space O(n²r/64) for the resident
// reference bipartition sets.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/rf.hpp"
#include "core/tree_source.hpp"
#include "core/variants.hpp"
#include "phylo/bipartition.hpp"
#include "phylo/tree.hpp"

namespace bfhrf::core {

/// How a single tree-vs-tree RF is computed inside the double loop.
enum class PairwiseEngine {
  BipartitionSet,  ///< sorted-merge over canonical bitmask sets (the model
                   ///< the paper analyses: O(n²/64) per pair)
  Day,             ///< Day's O(n) cluster-table algorithm (ablation A3);
                   ///< classic unit-weight RF only
};

struct SequentialRfOptions {
  std::size_t threads = 1;  ///< 1 = DS, >1 = DSMP (0 = hardware default)
  PairwiseEngine engine = PairwiseEngine::BipartitionSet;
  const RfVariant* variant = nullptr;  ///< BipartitionSet engine only
  RfNorm norm = RfNorm::None;
  bool include_trivial = false;
};

struct SequentialRfResult {
  std::vector<double> avg_rf;        ///< per query tree, input order
  std::size_t reference_memory_bytes = 0;  ///< resident B(T) storage for R
};

/// Average RF of each tree in Q against the collection R.
[[nodiscard]] SequentialRfResult sequential_avg_rf(
    std::span<const phylo::Tree> queries,
    std::span<const phylo::Tree> reference,
    const SequentialRfOptions& opts = {});

/// Streaming-Q variant: Q is consumed one batch at a time (R stays
/// resident, as in the paper's implementation).
[[nodiscard]] SequentialRfResult sequential_avg_rf(
    TreeSource& queries, std::span<const phylo::Tree> reference,
    const SequentialRfOptions& opts = {});

/// Weighted symmetric difference of two sorted bipartition sets under a
/// variant (filter + weight). Exposed for tests.
[[nodiscard]] double weighted_symmetric_difference(
    const phylo::BipartitionSet& a, const phylo::BipartitionSet& b,
    const RfVariant& variant);

}  // namespace bfhrf::core
