#include "core/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <utility>

#include "core/index_file.hpp"
#include "util/error.hpp"

namespace bfhrf::core {
namespace {

constexpr char kMagic[4] = {'B', 'F', 'H', 'v'};
constexpr std::uint32_t kVersion = 1;

// Little-endian scalar IO. The format is explicitly little-endian; on a
// big-endian host these helpers would need byte swaps (statically noted
// rather than silently wrong: all currently supported targets are LE).
template <typename T>
void put(std::ostream& out, T v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof v);
}

template <typename T>
T get(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof v);
  if (!in) {
    throw ParseError("bfhrf load: truncated stream");
  }
  return v;
}

}  // namespace

void save_bfhrf(const Bfhrf& engine, std::ostream& out) {
  const BfhrfStats stats = engine.stats();
  if (stats.reference_trees == 0) {
    throw InvalidArgument("save_bfhrf: engine has not been built");
  }
  const FrequencyStore& store = engine.store();

  out.write(kMagic, sizeof kMagic);
  put<std::uint32_t>(out, kVersion);
  put<std::uint8_t>(out, engine.options().compressed_keys ? 1 : 0);
  put<std::uint8_t>(out, engine.options().include_trivial ? 1 : 0);
  put<std::uint64_t>(out, store.n_bits());
  put<std::uint64_t>(out, stats.reference_trees);
  put<std::uint64_t>(out, stats.unique_bipartitions);
  put<std::uint64_t>(out, stats.total_bipartitions);
  put<double>(out, store.total_weight());

  store.for_each_key([&](util::ConstWordSpan key, std::uint32_t count) {
    put<std::uint32_t>(out, count);
    out.write(reinterpret_cast<const char*>(key.data()),
              static_cast<std::streamsize>(key.size() * sizeof(std::uint64_t)));
  });
  if (!out) {
    throw Error("save_bfhrf: stream write failed");
  }
}

Bfhrf load_bfhrf(std::istream& in, BfhrfOptions opts) {
  char magic[4] = {};
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw ParseError("bfhrf load: bad magic (not a saved BFHRF index)");
  }
  const auto version = get<std::uint32_t>(in);
  if (version != kVersion) {
    throw ParseError("bfhrf load: unsupported version " +
                     std::to_string(version));
  }
  const bool compressed = get<std::uint8_t>(in) != 0;
  const bool include_trivial = get<std::uint8_t>(in) != 0;
  const auto n_bits = static_cast<std::size_t>(get<std::uint64_t>(in));
  const auto reference_trees =
      static_cast<std::size_t>(get<std::uint64_t>(in));
  const auto unique = static_cast<std::size_t>(get<std::uint64_t>(in));
  const auto total = get<std::uint64_t>(in);
  const double total_weight = get<double>(in);
  if (n_bits == 0 || reference_trees == 0) {
    throw ParseError("bfhrf load: corrupt header");
  }

  // Store kind and trivial-split convention are properties of the saved
  // index, not of the caller's runtime options.
  opts.compressed_keys = compressed;
  opts.include_trivial = include_trivial;
  Bfhrf engine(n_bits, opts);
  engine.reference_trees_ = reference_trees;

  const std::size_t words_per = util::words_for_bits(n_bits);
  std::vector<std::uint64_t> key(words_per);
  std::uint64_t total_check = 0;
  for (std::size_t i = 0; i < unique; ++i) {
    const auto count = get<std::uint32_t>(in);
    if (count == 0) {
      throw ParseError("bfhrf load: zero-count key");
    }
    in.read(reinterpret_cast<char*>(key.data()),
            static_cast<std::streamsize>(words_per * sizeof(std::uint64_t)));
    if (!in) {
      throw ParseError("bfhrf load: truncated key block");
    }
    engine.store_->add(key, count);
    total_check += count;
  }
  if (total_check != total ||
      engine.store_->unique_count() != unique) {
    throw ParseError("bfhrf load: count mismatch (corrupt stream)");
  }
  engine.store_->set_total_weight(total_weight);
  // The replay grew the store's tables; refresh the cached query view so
  // it points at the final layout.
  engine.publish_store_metrics();
  return engine;
}

Bfhrf load_bfhrf_mapped(const std::string& path, BfhrfOptions opts) {
  auto mapped = std::make_unique<MappedFrequencyStore>(path);
  // Store shape is the file's, not the caller's: the ctor-made store is
  // discarded by adopt_store, so keep it the minimal single table.
  opts.compressed_keys = mapped->kind() == MappedStoreKind::Compressed;
  opts.include_trivial = mapped->include_trivial();
  opts.shards = 1;
  const std::size_t n_bits = mapped->n_bits();
  const std::size_t trees = mapped->reference_trees();
  Bfhrf engine(n_bits, opts);
  engine.adopt_store(std::move(mapped), trees);
  return engine;
}

void save_bfhrf_file(const Bfhrf& engine, const std::string& path,
                     IndexFormat format) {
  if (format == IndexFormat::Mapped) {
    const BfhrfStats stats = engine.stats();
    if (stats.reference_trees == 0) {
      throw InvalidArgument("save_bfhrf: engine has not been built");
    }
    write_index_file(
        engine.store(),
        IndexFileMeta{.include_trivial = engine.options().include_trivial,
                      .reference_trees = stats.reference_trees},
        path);
    return;
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw Error("save_bfhrf: cannot open '" + path + "' for writing");
  }
  save_bfhrf(engine, out);
}

Bfhrf load_bfhrf_file(const std::string& path, BfhrfOptions opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw Error("load_bfhrf: cannot open '" + path + "'");
  }
  // Sniff the representation off the magic so callers need no format flag.
  char magic[8] = {};
  in.read(magic, sizeof magic);
  if (in.gcount() >= 6 && std::memcmp(magic, kMappedMagic, 6) == 0) {
    in.close();
    return load_bfhrf_mapped(path, opts);
  }
  in.clear();
  in.seekg(0);
  return load_bfhrf(in, opts);
}

// --- DynamicBfhIndex::from_index_file ---------------------------------------

DynamicBfhIndex DynamicBfhIndex::from_index_file(const std::string& path,
                                                 BfhrfOptions opts) {
  opts.shards = 1;  // dynamic index invariant (single concrete table)
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      throw Error("from_index_file: cannot open '" + path + "'");
    }
    char magic[8] = {};
    in.read(magic, sizeof magic);
    if (in.gcount() < 6 || std::memcmp(magic, kMappedMagic, 6) != 0) {
      // v1 stream: full rebuild-on-load, then wrap.
      in.clear();
      in.seekg(0);
      Bfhrf engine = load_bfhrf(in, opts);
      DynamicBfhIndex index(engine.n_bits_, engine.options());
      index.engine_ = std::move(engine);
      return index;
    }
  }

  const MappedFrequencyStore mapped(path);
  opts.compressed_keys = mapped.kind() == MappedStoreKind::Compressed;
  opts.include_trivial = mapped.include_trivial();
  DynamicBfhIndex index(mapped.n_bits(), opts);
  Bfhrf& engine = index.engine_;
  if (mapped.kind() == MappedStoreKind::Raw && mapped.shard_count() == 1) {
    // Zero-parse warm start: adopt the mapped layout verbatim into the
    // index's mutable table (memcpy + tombstone recount; the writer
    // compacted, so the recount finds none).
    mapped.warm_start(static_cast<FrequencyHash&>(*engine.store_));
  } else {
    // Multi-shard or compressed files replay into the single table.
    mapped.for_each_key([&](util::ConstWordSpan key, std::uint32_t count) {
      engine.store_->add(key, count);
    });
    engine.store_->set_total_weight(mapped.total_weight());
  }
  engine.reference_trees_ = mapped.reference_trees();
  engine.publish_store_metrics();
  return index;
}

}  // namespace bfhrf::core
