// supertree_search — the workload the paper's introduction motivates:
// "find a query tree from a possibly given set of query trees ... that has
// the lowest distance to the collection of given reference trees" (§I).
//
// Two stages:
//   1. Candidate scoring: rank a set of candidate summary trees by average
//      RF against the collection (one BFH build, q cheap queries).
//   2. Hill climbing: starting from the best candidate, greedily accept
//      NNI/SPR moves that lower the average RF — every proposal is scored
//      with one O(n) tree-vs-hash query instead of r tree-vs-tree RF
//      computations, which is exactly why the frequency hash makes local
//      search practical.
#include <algorithm>
#include <cstdio>

#include "core/bfhrf.hpp"
#include "core/consensus.hpp"
#include "phylo/newick.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace bfhrf;

  constexpr std::size_t kTaxa = 32;
  constexpr std::size_t kReference = 500;
  constexpr std::size_t kCandidates = 64;
  constexpr std::size_t kSearchSteps = 400;

  const auto taxa = phylo::TaxonSet::make_numbered(kTaxa, "sp");
  util::Rng rng(7);

  // Reference collection clustered around a hidden truth.
  const phylo::Tree truth = sim::yule_tree(taxa, rng);
  std::vector<phylo::Tree> reference;
  reference.reserve(kReference);
  for (std::size_t i = 0; i < kReference; ++i) {
    phylo::Tree t = truth;
    sim::perturb(t, rng, 4);
    reference.push_back(std::move(t));
  }

  core::Bfhrf engine(kTaxa, {.threads = 2});
  util::WallTimer build_timer;
  engine.build(reference);
  std::printf("built BFH over %zu trees in %.3f s (%zu unique splits)\n",
              kReference, build_timer.seconds(),
              engine.stats().unique_bipartitions);

  // Stage 1: score independent random candidates.
  std::vector<phylo::Tree> candidates;
  candidates.reserve(kCandidates);
  for (std::size_t i = 0; i < kCandidates; ++i) {
    candidates.push_back(sim::uniform_tree(taxa, rng));
  }
  const auto scores = engine.query(candidates);
  std::size_t best_idx = 0;
  for (std::size_t i = 1; i < scores.size(); ++i) {
    if (scores[i] < scores[best_idx]) {
      best_idx = i;
    }
  }
  std::printf("best of %zu random candidates: avg RF %.3f\n", kCandidates,
              scores[best_idx]);

  // The greedy consensus (read straight off the hash) is usually a much
  // better starting point than any random candidate — use whichever wins.
  const phylo::Tree consensus = core::consensus_tree(
      engine.store(), kReference, taxa, {.threshold = 0.0});
  const double consensus_score = engine.query_one(consensus);
  std::printf("greedy consensus scores avg RF %.3f\n", consensus_score);

  // Stage 2: hill-climb with tree-vs-hash scoring.
  phylo::Tree current = consensus_score < scores[best_idx]
                            ? consensus
                            : candidates[best_idx];
  double current_score = std::min(consensus_score, scores[best_idx]);
  std::size_t accepted = 0;
  util::WallTimer search_timer;
  for (std::size_t step = 0; step < kSearchSteps; ++step) {
    phylo::Tree proposal = current;
    if (rng.bernoulli(0.5)) {
      sim::random_nni(proposal, rng);
    } else {
      sim::random_spr_leaf(proposal, rng);
    }
    const double proposal_score = engine.query_one(proposal);
    if (proposal_score < current_score) {
      current = std::move(proposal);
      current_score = proposal_score;
      ++accepted;
    }
  }
  std::printf("hill climb: %zu/%zu moves accepted in %.3f s, avg RF %.3f\n",
              accepted, kSearchSteps, search_timer.seconds(), current_score);

  // How close did we get to the hidden truth and to the theoretical floor?
  const double truth_score = engine.query_one(truth);
  std::printf("hidden truth scores avg RF %.3f against the collection\n",
              truth_score);
  std::printf("found tree:\n  %s\n", phylo::write_newick(current).c_str());
  std::printf("(the search tree's score should approach the truth's; with "
              "%zu proposals scored, a pairwise engine would have computed "
              "%zu tree-vs-tree distances — the hash needed %zu cheap "
              "queries instead)\n",
              kSearchSteps, kSearchSteps * kReference, kSearchSteps);
  return 0;
}
