// bfhrf_generate — dataset synthesis CLI (the paper's Table II presets).
//
//   bfhrf_generate --preset avian|insect|variable-trees|variable-species
//                  [-n TAXA] [-r TREES] [--moves M] [--seed S]
//                  [--lengths|--no-lengths] [-o out.nwk|out.nex|out.p2v]
//
// Writes the collection as Newick (default), NEXUS (when -o ends in
// .nex), or a binary phylo2vec corpus (when -o ends in .p2v). These are
// the exact generators the benches use, exposed so users can reproduce or
// extend the experiments with external tools.
#include <cstdio>
#include <optional>
#include <string>

#include "phylo/newick.hpp"
#include "phylo/nexus.hpp"
#include "phylo/vector_codec.hpp"
#include "sim/datasets.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

int main(int argc, char** argv) {
  using namespace bfhrf;
  try {
    std::string preset = "variable-trees";
    std::string output = "-";
    std::optional<std::size_t> n;
    std::optional<std::size_t> r;
    std::optional<std::size_t> moves;
    std::optional<std::uint64_t> seed;
    std::optional<bool> lengths;

    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&] {
        if (i + 1 >= argc) {
          throw InvalidArgument(arg + " needs a value");
        }
        return std::string(argv[++i]);
      };
      if (arg == "--preset") {
        preset = value();
      } else if (arg == "-n") {
        n = util::parse_size(value());
      } else if (arg == "-r") {
        r = util::parse_size(value());
      } else if (arg == "--moves") {
        moves = util::parse_size(value());
      } else if (arg == "--seed") {
        seed = util::parse_size(value());
      } else if (arg == "--lengths") {
        lengths = true;
      } else if (arg == "--no-lengths") {
        lengths = false;
      } else if (arg == "-o") {
        output = value();
      } else {
        std::fprintf(
            stderr,
            "usage: %s --preset avian|insect|variable-trees|variable-species"
            " [-n TAXA] [-r TREES] [--moves M] [--seed S]\n"
            "          [--lengths|--no-lengths] [-o out.nwk|out.nex|out.p2v]\n",
            argv[0]);
        return arg == "-h" || arg == "--help" ? 0 : 1;
      }
    }

    sim::DatasetSpec spec;
    if (preset == "avian") {
      spec = sim::avian_like(r.value_or(14446));
    } else if (preset == "insect") {
      spec = sim::insect_like(r.value_or(149278));
    } else if (preset == "variable-trees") {
      spec = sim::variable_trees(r.value_or(1000));
    } else if (preset == "variable-species") {
      spec = sim::variable_species(n.value_or(100));
      if (r) {
        spec.n_trees = *r;
      }
    } else {
      throw InvalidArgument("unknown preset '" + preset + "'");
    }
    if (n) {
      spec.n_taxa = *n;
    }
    if (moves) {
      spec.moves_per_tree = *moves;
    }
    if (seed) {
      spec.seed = *seed;
    }
    if (lengths) {
      spec.branch_lengths = *lengths;
    }

    const sim::Dataset ds = sim::generate(spec);
    const phylo::NewickWriteOptions wopts{.write_lengths =
                                              spec.branch_lengths};
    if (output == "-") {
      for (const auto& t : ds.trees) {
        std::printf("%s\n", phylo::write_newick(t, wopts).c_str());
      }
    } else if (output.size() > 4 &&
               output.substr(output.size() - 4) == ".nex") {
      phylo::write_nexus_file(output, ds.trees, ds.taxa);
    } else if (output.size() > 4 &&
               output.substr(output.size() - 4) == ".p2v") {
      // Binary phylo2vec corpus: topology-only (lengths are dropped),
      // labels carried in the header.
      phylo::write_p2v_file(output, ds.trees);
    } else {
      phylo::write_newick_file(output, ds.trees, wopts);
    }
    std::fprintf(stderr,
                 "# %s: n=%zu r=%zu moves=%zu lengths=%s seed=%llu -> %s\n",
                 spec.name.c_str(), spec.n_taxa, spec.n_trees,
                 spec.moves_per_tree, spec.branch_lengths ? "yes" : "no",
                 static_cast<unsigned long long>(spec.seed), output.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
