// variants_demo — the extensibility pitch (§VII-F): because the frequency
// hash stores real bipartitions, any generalized RF expressible as a
// per-split filter/weight runs through the same engine.
//
// Shown here on one collection:
//   * classic RF,
//   * bipartition-size filtering (the variant the paper implements),
//   * information-weighted RF (Smith 2020 family),
//   * a custom one-liner (LambdaRf) counting only "cherry" splits,
//   * variable-taxa comparison via restriction to common taxa (§VII-E).
#include <cstdio>

#include "core/bfhrf.hpp"
#include "core/branch_score.hpp"
#include "core/restrict.hpp"
#include "core/variants.hpp"
#include "phylo/newick.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/rng.hpp"

namespace {

void run_variant(const char* label,
                 std::span<const bfhrf::phylo::Tree> queries,
                 std::span<const bfhrf::phylo::Tree> reference,
                 const bfhrf::core::RfVariant* variant) {
  bfhrf::core::BfhrfOptions opts;
  opts.variant = variant;
  const auto scores =
      bfhrf::core::bfhrf_average_rf(queries, reference, opts);
  std::printf("%-28s", label);
  for (const double s : scores) {
    std::printf("  %8.3f", s);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace bfhrf;

  constexpr std::size_t kTaxa = 24;
  const auto taxa = phylo::TaxonSet::make_numbered(kTaxa, "sp");
  util::Rng rng(99);

  const phylo::Tree base = sim::yule_tree(taxa, rng);
  std::vector<phylo::Tree> reference;
  for (int i = 0; i < 100; ++i) {
    phylo::Tree t = base;
    sim::perturb(t, rng, 3);
    reference.push_back(std::move(t));
  }
  // Three queries: near the collection, far, and multifurcating.
  std::vector<phylo::Tree> queries;
  {
    phylo::Tree near = base;
    sim::perturb(near, rng, 1);
    queries.push_back(std::move(near));
    queries.push_back(sim::uniform_tree(taxa, rng));
    queries.push_back(sim::multifurcating_tree(taxa, rng, 0.4));
  }

  std::printf("%-28s  %8s  %8s  %8s\n", "variant", "near", "far", "multi");
  run_variant("classic", queries, reference, nullptr);

  const core::SizeFilteredRf size_filter(3, kTaxa / 2);
  run_variant("size-filtered [3, n/2]", queries, reference, &size_filter);

  const core::InformationWeightedRf info(kTaxa);
  run_variant("information-weighted", queries, reference, &info);

  // A custom variant in one lambda: only count cherry splits (|side|==2),
  // weighting all equally — "how much do the cherries disagree?".
  const core::LambdaRf cherries(
      "cherries-only",
      [](const core::BipartitionRef& b) {
        return std::min(b.ones, b.n_bits - b.ones) == 2;
      },
      nullptr);
  run_variant("cherries-only (custom)", queries, reference, &cherries);

  // Branch-score distance (§IX "catalog of RF variations"): same hash
  // pattern, but split *lengths* instead of split presence. Needs weighted
  // trees, so rebuild the collection with branch lengths.
  std::printf("\nbranch-score (Kuhner-Felsenstein, squared) workflow:\n");
  {
    util::Rng rng2(7);
    const phylo::Tree wbase = sim::yule_tree(
        taxa, rng2, sim::GeneratorOptions{.branch_lengths = true});
    std::vector<phylo::Tree> wref;
    for (int i = 0; i < 60; ++i) {
      phylo::Tree t = wbase;
      sim::perturb(t, rng2, 2);
      wref.push_back(std::move(t));
    }
    core::BranchScoreBfhrf bs(kTaxa);
    bs.build(wref);
    phylo::Tree near = wbase;
    sim::perturb(near, rng2, 1);
    const phylo::Tree far = sim::uniform_tree(
        taxa, rng2, sim::GeneratorOptions{.branch_lengths = true});
    std::printf("  mean BS^2: near=%.4f far=%.4f (same build/query shape "
                "as classic BFHRF, %zu unique splits)\n",
                bs.query_one(near), bs.query_one(far), bs.unique_splits());
  }

  // Variable taxa (§VII-E): drop different taxa from different trees, then
  // restrict everything to the common core and run the same engine.
  std::printf("\nvariable-taxa workflow:\n");
  std::vector<phylo::Tree> ragged;
  for (int i = 0; i < 50; ++i) {
    util::DynamicBitset keep(kTaxa);
    keep.flip_all();
    keep.reset(18 + static_cast<std::size_t>(i % 4));  // each tree misses one
    phylo::Tree t = core::restrict_to_taxa(base, keep);
    sim::perturb(t, rng, 2);
    ragged.push_back(std::move(t));
  }
  const auto core_taxa = core::common_taxa(ragged);
  std::printf("  %zu trees, common core %zu of %zu taxa\n", ragged.size(),
              core_taxa.count(), kTaxa);
  const auto restricted = core::restrict_to_common_taxa(ragged);
  const auto self_scores = core::bfhrf_average_rf(restricted, restricted);
  double mean = 0;
  for (const double s : self_scores) {
    mean += s;
  }
  std::printf("  mean avg-RF over the restricted collection: %.3f\n",
              mean / static_cast<double>(self_scores.size()));
  std::printf("  (restriction is plain preprocessing — no engine changes, "
              "which is the point of a non-transformative hash)\n");
  return 0;
}
