// cluster_trees — the clustering analysis the all-vs-all RF matrix exists
// for (paper §VIII: "the all versus all RF matrix problem which is useful
// for clustering techniques").
//
// Pipeline: simulate a mixture of gene-tree families (e.g. genes following
// different histories), compute the exact parallel RF matrix, cluster it
// hierarchically and with k-medoids, and report how well the planted
// families are recovered. The medoid trees double as per-family summaries,
// cross-checked with the triplet distance.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/all_pairs.hpp"
#include "core/cluster.hpp"
#include "core/triplet.hpp"
#include "phylo/newick.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main() {
  using namespace bfhrf;

  constexpr std::size_t kTaxa = 30;
  constexpr std::size_t kFamilies = 3;
  constexpr std::size_t kPerFamily = 40;

  const auto taxa = phylo::TaxonSet::make_numbered(kTaxa, "sp");
  util::Rng rng(314159);

  // Plant three well-separated families of gene trees.
  std::vector<phylo::Tree> trees;
  std::vector<std::uint32_t> truth;
  std::vector<phylo::Tree> family_bases;
  for (std::size_t f = 0; f < kFamilies; ++f) {
    family_bases.push_back(sim::uniform_tree(taxa, rng));
    for (std::size_t i = 0; i < kPerFamily; ++i) {
      phylo::Tree t = family_bases.back();
      sim::perturb(t, rng, 2);
      trees.push_back(std::move(t));
      truth.push_back(static_cast<std::uint32_t>(f));
    }
  }

  util::WallTimer timer;
  const core::RfMatrix matrix = core::all_pairs_rf(trees, {.threads = 2});
  std::printf("exact RF matrix for %zu trees in %.3f s (%.2f MB)\n",
              trees.size(), timer.seconds(),
              static_cast<double>(matrix.memory_bytes()) / (1024.0 * 1024.0));

  const auto rand_index = [&](const std::vector<std::uint32_t>& labels) {
    std::size_t agree = 0;
    std::size_t total = 0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      for (std::size_t j = i + 1; j < labels.size(); ++j) {
        ++total;
        agree += ((labels[i] == labels[j]) == (truth[i] == truth[j]))
                     ? std::size_t{1}
                     : std::size_t{0};
      }
    }
    return static_cast<double>(agree) / static_cast<double>(total);
  };

  // Hierarchical clustering, three linkages.
  for (const auto& [linkage, name] :
       {std::pair{core::Linkage::Single, "single"},
        std::pair{core::Linkage::Complete, "complete"},
        std::pair{core::Linkage::Average, "average"}}) {
    const auto dendro = core::hierarchical_cluster(matrix, linkage);
    const auto labels = dendro.cut(kFamilies);
    std::printf("hierarchical (%s linkage): Rand index %.3f\n", name,
                rand_index(labels));
  }

  // k-medoids: flat clusters plus representative trees.
  const auto km = core::k_medoids(matrix, kFamilies, rng);
  std::printf("k-medoids: Rand index %.3f, cost %.1f, %zu iterations\n",
              rand_index(km.labels), km.total_cost, km.iterations);

  // Each medoid should be topologically closest to its own family's base —
  // verified with an independent metric (rooted triplet distance).
  std::printf("\nmedoid -> family-base triplet distances (rows: medoid, "
              "cols: family base; the diagonal should win):\n");
  for (std::size_t c = 0; c < kFamilies; ++c) {
    std::printf("  medoid %zu:", c);
    // Identify the family this medoid's cluster mostly contains.
    for (std::size_t f = 0; f < kFamilies; ++f) {
      const auto d =
          core::triplet_distance(trees[km.medoids[c]], family_bases[f]);
      std::printf("  %.3f", d.normalized());
    }
    std::printf("\n");
  }
  std::printf("\nmedoid trees:\n");
  for (std::size_t c = 0; c < kFamilies; ++c) {
    std::printf("  cluster %zu (tree #%zu): %s\n", c, km.medoids[c],
                phylo::write_newick(trees[km.medoids[c]]).c_str());
  }
  return 0;
}
