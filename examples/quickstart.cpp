// Quickstart: the 30-second tour of the public API.
//
//   1. Parse reference and query trees over one shared TaxonSet.
//   2. Build the bipartition frequency hash from the reference collection.
//   3. Query each tree for its average RF against the collection.
//
// Build & run:   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/bfhrf.hpp"
#include "phylo/newick.hpp"
#include "phylo/taxon_set.hpp"

int main() {
  using namespace bfhrf;

  // One taxon namespace shared by every tree in the comparison (this is
  // what makes bipartition bitmasks comparable across trees).
  auto taxa = std::make_shared<phylo::TaxonSet>();

  // A small reference collection: three gene trees over five species.
  const std::vector<phylo::Tree> reference = {
      phylo::parse_newick("((human,chimp),(mouse,rat),dog);", taxa),
      phylo::parse_newick("((human,chimp),((mouse,rat),dog));", taxa),
      phylo::parse_newick("((human,(chimp,dog)),(mouse,rat));", taxa),
  };

  // Two candidate summary trees to score against the collection.
  const std::vector<phylo::Tree> queries = {
      phylo::parse_newick("((human,chimp),((mouse,rat),dog));", taxa),
      phylo::parse_newick("((human,mouse),((chimp,rat),dog));", taxa),
  };

  // Phase 1: build BFH_R once. Phase 2: score any number of queries.
  core::Bfhrf engine(taxa->size(), {.threads = 2});
  engine.build(reference);

  const std::vector<double> avg_rf = engine.query(queries);
  std::printf("average RF against the %zu reference trees:\n",
              reference.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    std::printf("  query %zu: %.4f\n", i, avg_rf[i]);
  }

  const auto stats = engine.stats();
  std::printf("\nhash: %zu unique bipartitions, %llu total, %.1f KB\n",
              stats.unique_bipartitions,
              static_cast<unsigned long long>(stats.total_bipartitions),
              static_cast<double>(stats.hash_memory_bytes) / 1024.0);
  std::printf("(query 0 matches the collection closely; query 1 groups "
              "human with mouse and scores worse)\n");
  return 0;
}
