// rf_matrix_tool — the all-versus-all workflow (paper §VIII): exact RF
// matrix of a collection, written as PHYLIP for downstream clustering and
// visualisation tools.
//
//   rf_matrix_tool -r trees.nwk [-t THREADS] [-o matrix.phy] [-k K]
//
// With -k the tool also clusters the matrix (average linkage) and prints
// cluster sizes plus the medoid tree per cluster — a complete §VIII
// analysis in one command.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/all_pairs.hpp"
#include "core/cluster.hpp"
#include "core/matrix_io.hpp"
#include "phylo/newick.hpp"
#include "phylo/nexus.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace {

bool is_nexus(const std::string& path) {
  std::ifstream in(path);
  std::string word;
  in >> word;
  return !word.empty() && word[0] == '#';
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bfhrf;
  try {
    std::string input_path;
    std::string output_path;
    std::size_t threads = 1;
    std::size_t k = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      const auto value = [&] {
        if (i + 1 >= argc) {
          throw InvalidArgument(arg + " needs a value");
        }
        return std::string(argv[++i]);
      };
      if (arg == "-r") {
        input_path = value();
      } else if (arg == "-o") {
        output_path = value();
      } else if (arg == "-t") {
        threads = util::parse_size(value());
      } else if (arg == "-k") {
        k = util::parse_size(value());
      } else {
        std::fprintf(stderr,
                     "usage: %s -r trees.nwk [-t THREADS] [-o matrix.phy] "
                     "[-k K]\n",
                     argv[0]);
        return 1;
      }
    }
    if (input_path.empty()) {
      throw InvalidArgument("missing -r input file");
    }

    auto taxa = std::make_shared<phylo::TaxonSet>();
    std::vector<phylo::Tree> trees;
    if (is_nexus(input_path)) {
      trees = std::move(phylo::read_nexus_file(input_path, taxa).trees);
    } else {
      trees = phylo::read_newick_file(input_path, taxa);
    }

    util::WallTimer timer;
    const core::RfMatrix matrix =
        core::all_pairs_rf(trees, {.threads = threads});
    std::fprintf(stderr, "# %zu trees, matrix in %.3f s (%.2f MB)\n",
                 trees.size(), timer.seconds(),
                 static_cast<double>(matrix.memory_bytes()) /
                     (1024.0 * 1024.0));

    std::vector<std::string> names;
    names.reserve(trees.size());
    for (std::size_t i = 0; i < trees.size(); ++i) {
      names.push_back("tree" + std::to_string(i));
    }
    if (output_path.empty()) {
      core::write_phylip_matrix(std::cout, matrix, names);
    } else {
      core::write_phylip_matrix_file(output_path, matrix, names);
      std::fprintf(stderr, "# matrix written to %s\n", output_path.c_str());
    }

    if (k > 0) {
      const auto dendro =
          core::hierarchical_cluster(matrix, core::Linkage::Average);
      const auto labels = dendro.cut(k);
      util::Rng rng(1);
      const auto medoids = core::k_medoids(matrix, k, rng);
      std::map<std::uint32_t, std::size_t> sizes;
      for (const auto label : labels) {
        ++sizes[label];
      }
      std::fprintf(stderr, "# %zu clusters (average linkage):\n", k);
      for (const auto& [label, size] : sizes) {
        std::fprintf(stderr, "#   cluster %u: %zu trees\n", label, size);
      }
      std::fprintf(stderr, "# k-medoid representatives:\n");
      for (std::size_t c = 0; c < k; ++c) {
        std::fprintf(stderr, "#   %s\n",
                     phylo::write_newick(trees[medoids.medoids[c]]).c_str());
      }
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
