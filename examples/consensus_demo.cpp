// consensus_demo — reading a consensus tree straight out of the frequency
// hash (the paper's §IX "other applications of directly using a BFH").
//
// Simulates a gene-tree collection clustered around a hidden species tree,
// builds BFH_R once, then derives majority-rule and greedy consensus trees
// from the hash and shows the consensus recovering the hidden topology.
#include <algorithm>
#include <cstdio>

#include "core/bfhrf.hpp"
#include "core/consensus.hpp"
#include "core/rf.hpp"
#include "phylo/newick.hpp"
#include "sim/generators.hpp"
#include "sim/moves.hpp"
#include "util/rng.hpp"

int main() {
  using namespace bfhrf;

  constexpr std::size_t kTaxa = 20;
  constexpr std::size_t kTrees = 200;
  constexpr std::size_t kDiscordance = 3;  // moves per gene tree

  const auto taxa = phylo::TaxonSet::make_numbered(kTaxa, "sp");
  util::Rng rng(2024);

  // Hidden "species tree" + a coalescent-like cloud of gene trees.
  const phylo::Tree species = sim::yule_tree(taxa, rng);
  std::vector<phylo::Tree> genes;
  genes.reserve(kTrees);
  for (std::size_t i = 0; i < kTrees; ++i) {
    phylo::Tree t = species;
    sim::perturb(t, rng, kDiscordance);
    genes.push_back(std::move(t));
  }

  // One hash serves both the RF queries and the consensus construction.
  core::Bfhrf engine(kTaxa, {.threads = 2});
  engine.build(genes);

  const phylo::Tree majority =
      core::consensus_tree(engine.store(), kTrees, taxa);
  const phylo::Tree greedy = core::consensus_tree(
      engine.store(), kTrees, taxa, {.threshold = 0.0});

  std::printf("hidden species tree:\n  %s\n",
              phylo::write_newick(species).c_str());
  std::printf("majority-rule consensus (threshold 0.5):\n  %s\n",
              phylo::write_newick(majority).c_str());
  std::printf("greedy consensus (threshold 0):\n  %s\n",
              phylo::write_newick(greedy).c_str());

  std::printf("\nRF(species, majority) = %zu\n",
              core::rf_distance(species, majority));
  std::printf("RF(species, greedy)   = %zu\n",
              core::rf_distance(species, greedy));

  // The consensus should also be an excellent summary under average RF —
  // compare its score with the best gene tree's.
  const double consensus_score = engine.query_one(greedy);
  const auto gene_scores = engine.query(genes);
  double best_gene = gene_scores.front();
  for (const double s : gene_scores) {
    best_gene = std::min(best_gene, s);
  }
  std::printf("\navg RF against the collection:\n");
  std::printf("  greedy consensus : %.3f\n", consensus_score);
  std::printf("  best gene tree   : %.3f\n", best_gene);
  std::printf("(lower is better; the consensus is typically at or below "
              "the best single gene tree)\n");
  return 0;
}
