// bfhrf_cli — the paper's tool as a command-line program.
//
// Mirrors the original's interface ("an easy to use installation and
// interface for calculating the average RF of query trees against a
// collection of reference trees", §I), streaming both files so memory
// stays bounded by the frequency hash:
//
//   bfhrf_cli -r reference.nwk [-q query.nwk] [-t THREADS]
//             [--normalized | --half] [--min-size K] [--max-size K]
//             [--include-trivial] [--compressed-keys] [--stats]
//             [--shards N] [--save-index FILE [--mapped] | --load-index FILE]
//             [--input-format auto|newick|nexus|vector]
//             [--emit-vector FILE]
//             [--matrix [--matrix-engine auto|legacy|dense|sparse]]
//
// With no -q, the reference collection is scored against itself (Q is R,
// the paper's experimental setting). Input files may be Newick (streamed),
// NEXUS (detected by the #NEXUS header; loaded via the TREES block), or a
// phylo2vec .p2v corpus (detected by extension or the P2V1 magic; streamed
// with bipartitions extracted directly from the vector rows — no Newick
// parse, no Tree). --emit-vector converts the reference collection to a
// .p2v corpus and exits. Output: one line per query tree,
// "<index>\t<avg RF>".
//
// --matrix switches to the exact all-pairs product instead: the full RF
// matrix of the reference collection (core/all_pairs bit-matrix engines)
// printed in PHYLIP format on stdout.
#include <cctype>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <fstream>
#include <iostream>

#include "core/all_pairs.hpp"
#include "core/bfhrf.hpp"
#include "core/matrix_io.hpp"
#include "core/serialize.hpp"
#include "core/tree_source.hpp"
#include "core/variants.hpp"
#include "phylo/nexus.hpp"
#include "phylo/taxon_set.hpp"
#include "phylo/vector_codec.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"
#include "util/timer.hpp"

namespace {

enum class TreeFormat { Auto, Newick, Nexus, Vector };

struct CliOptions {
  std::string reference_path;
  std::string query_path;   // empty = Q is R
  std::string save_index;   // write the built index here
  std::string load_index;   // read a prebuilt index instead of -r
  std::string emit_vector;  // convert -r to a .p2v corpus and exit
  TreeFormat input_format = TreeFormat::Auto;  // applies to -r and -q
  std::size_t threads = 1;
  std::size_t shards = 1;   // 0 = auto-size from threads/hardware
  bool mapped_format = false;  // --save-index writes the mmap-able layout
  bfhrf::core::RfNorm norm = bfhrf::core::RfNorm::None;
  std::optional<std::size_t> min_size;
  std::optional<std::size_t> max_size;
  bool include_trivial = false;
  bool compressed_keys = false;
  bool stats = false;
  bool matrix = false;  // all-pairs PHYLIP matrix instead of averages
  bfhrf::core::AllPairsEngine matrix_engine =
      bfhrf::core::AllPairsEngine::Auto;
};

bfhrf::core::AllPairsEngine parse_matrix_engine(const std::string& name) {
  if (name == "auto") {
    return bfhrf::core::AllPairsEngine::Auto;
  }
  if (name == "legacy") {
    return bfhrf::core::AllPairsEngine::Legacy;
  }
  if (name == "dense") {
    return bfhrf::core::AllPairsEngine::BitDense;
  }
  if (name == "sparse") {
    return bfhrf::core::AllPairsEngine::BitSparse;
  }
  throw bfhrf::InvalidArgument("--matrix-engine must be auto, legacy, dense "
                               "or sparse (got '" +
                               name + "')");
}

/// Sniff the file format: NEXUS files start with "#NEXUS".
bool is_nexus(const std::string& path) {
  std::ifstream in(path);
  std::string word;
  in >> word;
  return word.size() >= 6 &&
         (word[0] == '#') &&
         (std::tolower(static_cast<unsigned char>(word[1])) == 'n');
}

/// Sniff a phylo2vec corpus: the .p2v extension or the P2V1 magic bytes.
bool is_p2v(const std::string& path) {
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".p2v") == 0) {
    return true;
  }
  std::ifstream in(path, std::ios::binary);
  char magic[4] = {};
  in.read(magic, sizeof magic);
  return in.gcount() == 4 && std::memcmp(magic, "P2V1", 4) == 0;
}

TreeFormat parse_format(const std::string& name) {
  if (name == "auto") {
    return TreeFormat::Auto;
  }
  if (name == "newick") {
    return TreeFormat::Newick;
  }
  if (name == "nexus") {
    return TreeFormat::Nexus;
  }
  if (name == "vector") {
    return TreeFormat::Vector;
  }
  throw bfhrf::InvalidArgument(
      "--input-format must be auto, newick, nexus or vector (got '" + name +
      "')");
}

TreeFormat resolve_format(const std::string& path, TreeFormat forced) {
  if (forced != TreeFormat::Auto) {
    return forced;
  }
  if (is_p2v(path)) {
    return TreeFormat::Vector;
  }
  if (is_nexus(path)) {
    return TreeFormat::Nexus;
  }
  return TreeFormat::Newick;
}

/// Taxon namespace of a .p2v corpus: its labels when it carries them,
/// numbered otherwise.
bfhrf::phylo::TaxonSetPtr p2v_taxa(const bfhrf::phylo::P2vHeader& header) {
  if (header.labels.empty()) {
    return bfhrf::phylo::TaxonSet::make_numbered(header.n_taxa);
  }
  return std::make_shared<bfhrf::phylo::TaxonSet>(header.labels);
}

/// Vector rows address taxa by bit index, so a labeled query corpus must
/// agree with the reference namespace label-for-label — there is no cheap
/// remap of bipartition bitmasks. Label-free corpora are width-checked by
/// the engine.
void check_p2v_labels(const bfhrf::phylo::P2vHeader& header,
                      const bfhrf::phylo::TaxonSet& taxa) {
  if (header.labels.empty()) {
    return;
  }
  if (header.labels != taxa.labels()) {
    throw bfhrf::InvalidArgument(
        "query .p2v taxon labels do not match the reference namespace "
        "(vector rows are bound to bit order; re-emit the corpus over the "
        "reference taxon set)");
  }
}

/// Load a whole collection into memory, in any input format. For vector
/// input `taxa` is replaced by the corpus's own namespace.
std::vector<bfhrf::phylo::Tree> load_trees(const std::string& path,
                                           TreeFormat format,
                                           bfhrf::phylo::TaxonSetPtr& taxa) {
  namespace core = bfhrf::core;
  namespace phylo = bfhrf::phylo;
  if (format == TreeFormat::Nexus) {
    return std::move(phylo::read_nexus_file(path, taxa).trees);
  }
  std::vector<phylo::Tree> trees;
  phylo::Tree t;
  if (format == TreeFormat::Vector) {
    core::P2vFileSource rows(path);
    taxa = p2v_taxa(rows.header());
    core::VectorTreeSource src(rows, taxa);
    while (src.next(t)) {
      trees.push_back(std::move(t));
    }
    return trees;
  }
  core::FileTreeSource src(path, taxa);
  while (src.next(t)) {
    trees.push_back(std::move(t));
  }
  return trees;
}

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s -r reference.nwk [-q query.nwk] [-t THREADS]\n"
      "          [--normalized | --half] [--min-size K] [--max-size K]\n"
      "          [--include-trivial] [--compressed-keys] [--stats]\n"
      "          [--shards N] [--save-index FILE [--mapped] | --load-index FILE]\n"
      "          [--input-format auto|newick|nexus|vector]\n"
      "          [--emit-vector FILE]\n"
      "          [--matrix [--matrix-engine auto|legacy|dense|sparse]]\n"
      "\n"
      "Average Robinson-Foulds distance of each query tree against the\n"
      "reference collection, via a bipartition frequency hash (BFHRF).\n"
      "With no -q the reference collection is compared against itself.\n"
      "Inputs may be Newick, NEXUS, or phylo2vec .p2v corpora (vector rows\n"
      "stream straight into bipartition extraction — no Newick parse).\n"
      "--emit-vector converts the reference collection to a .p2v corpus\n"
      "and exits. --matrix instead prints the exact all-pairs RF matrix\n"
      "of the reference collection in PHYLIP format.\n",
      argv0);
}

CliOptions parse_args(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw bfhrf::InvalidArgument(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (arg == "-r" || arg == "--reference") {
      o.reference_path = need_value("-r");
    } else if (arg == "-q" || arg == "--query") {
      o.query_path = need_value("-q");
    } else if (arg == "-t" || arg == "--threads") {
      o.threads = bfhrf::util::parse_size(need_value("-t"));
    } else if (arg == "--normalized") {
      o.norm = bfhrf::core::RfNorm::MaxScaled;
    } else if (arg == "--half") {
      o.norm = bfhrf::core::RfNorm::HalfSum;
    } else if (arg == "--min-size") {
      o.min_size = bfhrf::util::parse_size(need_value("--min-size"));
    } else if (arg == "--max-size") {
      o.max_size = bfhrf::util::parse_size(need_value("--max-size"));
    } else if (arg == "--include-trivial") {
      o.include_trivial = true;
    } else if (arg == "--compressed-keys") {
      o.compressed_keys = true;
    } else if (arg == "--shards") {
      o.shards = bfhrf::util::parse_size(need_value("--shards"));
    } else if (arg == "--save-index") {
      o.save_index = need_value("--save-index");
    } else if (arg == "--mapped") {
      o.mapped_format = true;
    } else if (arg == "--load-index") {
      o.load_index = need_value("--load-index");
    } else if (arg == "--input-format") {
      o.input_format = parse_format(need_value("--input-format"));
    } else if (arg == "--emit-vector") {
      o.emit_vector = need_value("--emit-vector");
    } else if (arg == "--stats") {
      o.stats = true;
    } else if (arg == "--matrix") {
      o.matrix = true;
    } else if (arg == "--matrix-engine") {
      o.matrix_engine = parse_matrix_engine(need_value("--matrix-engine"));
    } else if (arg == "-h" || arg == "--help") {
      usage(argv[0]);
      std::exit(0);
    } else {
      throw bfhrf::InvalidArgument("unknown argument '" + arg + "'");
    }
  }
  if (o.reference_path.empty() && o.load_index.empty()) {
    usage(argv[0]);
    throw bfhrf::InvalidArgument("missing -r reference file (or --load-index)");
  }
  if (!o.load_index.empty() && o.query_path.empty()) {
    throw bfhrf::InvalidArgument("--load-index requires -q (the reference "
                                 "trees are not stored in the index)");
  }
  if (o.mapped_format && o.save_index.empty()) {
    throw bfhrf::InvalidArgument("--mapped only makes sense with --save-index");
  }
  if (o.matrix && !o.load_index.empty()) {
    throw bfhrf::InvalidArgument("--matrix needs the reference trees (-r); "
                                 "an index stores only the frequency hash");
  }
  if (!o.emit_vector.empty() && o.reference_path.empty()) {
    throw bfhrf::InvalidArgument("--emit-vector converts the -r collection; "
                                 "give it a reference file");
  }
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bfhrf;
  try {
    const CliOptions cli = parse_args(argc, argv);

    auto taxa = std::make_shared<phylo::TaxonSet>();

    // The size filter is the variant the paper ships (§VII-F).
    std::unique_ptr<core::RfVariant> variant;
    if (cli.min_size || cli.max_size) {
      variant = std::make_unique<core::SizeFilteredRf>(
          cli.min_size.value_or(0),
          cli.max_size.value_or(std::size_t{1} << 30));
    }

    core::BfhrfOptions opts;
    opts.threads = cli.threads;
    opts.norm = cli.norm;
    opts.include_trivial = cli.include_trivial;
    opts.compressed_keys = cli.compressed_keys;
    opts.shards = cli.shards;
    opts.variant = variant.get();

    util::WallTimer timer;

    // Conversion mode: materialize the reference collection (any format)
    // and re-emit it as a .p2v corpus, labels included. No engine runs.
    if (!cli.emit_vector.empty()) {
      const TreeFormat fmt =
          resolve_format(cli.reference_path, cli.input_format);
      const auto trees = load_trees(cli.reference_path, fmt, taxa);
      phylo::write_p2v_file(cli.emit_vector, trees);
      std::fprintf(stderr, "# wrote %zu trees over %zu taxa to %s\n",
                   trees.size(), taxa->size(), cli.emit_vector.c_str());
      return 0;
    }

    // Matrix mode: the exact all-pairs product instead of the averages
    // pipeline. The whole collection must be resident (the matrix is
    // O(r²) anyway), so streamed input is collected into memory.
    if (cli.matrix) {
      const TreeFormat fmt =
          resolve_format(cli.reference_path, cli.input_format);
      std::vector<phylo::Tree> trees =
          load_trees(cli.reference_path, fmt, taxa);
      taxa->freeze();
      const core::AllPairsOptions matrix_opts{
          .threads = cli.threads,
          .include_trivial = cli.include_trivial,
          .engine = cli.matrix_engine};
      const core::RfMatrix matrix = core::all_pairs_rf(trees, matrix_opts);
      const std::vector<std::string> names(trees.size());  // "tN" defaults
      core::write_phylip_matrix(std::cout, matrix, names);
      if (cli.stats) {
        std::fprintf(stderr,
                     "# taxa: %zu\n# trees: %zu\n# matrix time: %.3f s\n",
                     taxa->size(), trees.size(), timer.seconds());
      }
      return 0;
    }

    // Phase 1: ingest R and build the frequency hash. Newick files are
    // streamed (a first pass discovers the taxon namespace, which the
    // engine needs up front); NEXUS files are loaded via their TREES
    // block. The namespace is then frozen so a stray taxon in Q is a clean
    // error rather than a silent widening.
    std::vector<phylo::Tree> ref_trees;  // NEXUS path only
    std::unique_ptr<core::FileTreeSource> ref_stream;
    if (!cli.load_index.empty()) {
      // Build-once / query-many: the reference hash comes off disk. The
      // taxon namespace is rebuilt from the query file (widths checked by
      // the engine).
      core::Bfhrf engine = core::load_bfhrf_file(cli.load_index, opts);
      util::WallTimer qtimer;
      std::vector<double> avg_rf;
      const TreeFormat qfmt = resolve_format(cli.query_path, cli.input_format);
      if (qfmt == TreeFormat::Vector) {
        core::P2vFileSource queries(cli.query_path);
        avg_rf = engine.query(queries);  // direct extraction; width-checked
      } else if (qfmt == TreeFormat::Nexus) {
        const auto data = phylo::read_nexus_file(cli.query_path, taxa);
        avg_rf = engine.query(data.trees);
      } else {
        core::FileTreeSource queries(cli.query_path, taxa);
        avg_rf = engine.query(queries);
      }
      for (std::size_t i = 0; i < avg_rf.size(); ++i) {
        std::printf("%zu\t%.6f\n", i, avg_rf[i]);
      }
      if (cli.stats) {
        const auto stats = engine.stats();
        std::fprintf(stderr,
                     "# loaded index: %zu reference trees, %zu unique "
                     "bipartitions\n# query time: %.3f s\n",
                     stats.reference_trees, stats.unique_bipartitions,
                     qtimer.seconds());
      }
      return 0;
    }
    std::unique_ptr<core::P2vFileSource> ref_rows;  // vector path only
    const TreeFormat ref_format =
        resolve_format(cli.reference_path, cli.input_format);
    if (ref_format == TreeFormat::Vector) {
      // .p2v corpora skip taxon discovery entirely: the header fixes the
      // namespace, and rows stream straight into direct extraction.
      ref_rows = std::make_unique<core::P2vFileSource>(cli.reference_path);
      taxa = p2v_taxa(ref_rows->header());
    } else if (ref_format == TreeFormat::Nexus) {
      ref_trees =
          std::move(phylo::read_nexus_file(cli.reference_path, taxa).trees);
    } else {
      ref_stream =
          std::make_unique<core::FileTreeSource>(cli.reference_path, taxa);
      phylo::Tree t;
      while (ref_stream->next(t)) {
      }
      ref_stream->reset();
    }
    taxa->freeze();

    core::Bfhrf engine(taxa->size(), opts);
    if (ref_rows) {
      engine.build(*ref_rows);
    } else if (ref_stream) {
      engine.build(*ref_stream);
    } else {
      engine.build(ref_trees);
    }
    const double build_seconds = timer.seconds();
    if (!cli.save_index.empty()) {
      core::save_bfhrf_file(engine, cli.save_index,
                            cli.mapped_format ? core::IndexFormat::Mapped
                                              : core::IndexFormat::V1Stream);
      std::fprintf(stderr, "# index saved to %s (%s)\n",
                   cli.save_index.c_str(),
                   cli.mapped_format ? "mapped" : "v1 stream");
    }

    // Phase 2: run Q (or R again) through the hash.
    timer.restart();
    std::vector<double> avg_rf;
    if (cli.query_path.empty()) {
      if (ref_rows) {
        ref_rows->reset();
        avg_rf = engine.query(*ref_rows);
      } else if (ref_stream) {
        ref_stream->reset();
        avg_rf = engine.query(*ref_stream);
      } else {
        avg_rf = engine.query(ref_trees);
      }
    } else {
      const TreeFormat qfmt = resolve_format(cli.query_path, cli.input_format);
      if (qfmt == TreeFormat::Vector) {
        core::P2vFileSource queries(cli.query_path);
        check_p2v_labels(queries.header(), *taxa);
        avg_rf = engine.query(queries);
      } else if (qfmt == TreeFormat::Nexus) {
        const auto data = phylo::read_nexus_file(cli.query_path, taxa);
        avg_rf = engine.query(data.trees);
      } else {
        core::FileTreeSource queries(cli.query_path, taxa);
        avg_rf = engine.query(queries);
      }
    }
    const double query_seconds = timer.seconds();

    for (std::size_t i = 0; i < avg_rf.size(); ++i) {
      std::printf("%zu\t%.6f\n", i, avg_rf[i]);
    }

    if (cli.stats) {
      const auto stats = engine.stats();
      std::fprintf(stderr,
                   "# taxa: %zu\n"
                   "# reference trees: %zu\n"
                   "# query trees: %zu\n"
                   "# unique bipartitions: %zu\n"
                   "# sumBFHR: %llu\n"
                   "# hash memory: %.2f MB\n"
                   "# build time: %.3f s\n"
                   "# query time: %.3f s\n",
                   taxa->size(), stats.reference_trees, avg_rf.size(),
                   stats.unique_bipartitions,
                   static_cast<unsigned long long>(stats.total_bipartitions),
                   static_cast<double>(stats.hash_memory_bytes) /
                       (1024.0 * 1024.0),
                   build_seconds, query_seconds);
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
